//! The full DSM system model: processors, caches, directories, controllers
//! and the invalidation scheme, driven against the wormhole mesh.
//!
//! [`DsmSystem`] is the execution engine behind every experiment. Each call
//! to [`DsmSystem::step`] advances one 5 ns cycle:
//!
//! 1. the network moves flits ([`Network::tick`]);
//! 2. new deliveries enter the receiving node's controller (directory
//!    controller DC for home-bound messages, cache controller CC
//!    otherwise), which queues behind its busy time;
//! 3. due calendar events fire: message handlers run the protocol FSM,
//!    worms inject, i-acks post.
//!
//! Processors obey sequential consistency: one outstanding memory
//! operation, stalling on every miss until the protocol completes it.

use crate::config::{ConsistencyModel, SystemConfig};
use crate::metrics::Metrics;
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use crate::schemes::InvalidationScheme;
use std::collections::VecDeque;
use wormdsm_coherence::{
    Addr, BlockId, Cache, DirState, Directory, Evicted, LineState, MemGeometry, MsgTable, ProtoMsg,
    WbBuffer,
};
use wormdsm_mesh::nic::{Delivery, DeliveryKind};
use wormdsm_mesh::topology::NodeId;
use wormdsm_mesh::worm::{TxnId, VNet, WormKind, WormSpec};
use wormdsm_mesh::{ContentionProbe, LinkLoadMeter, Network, SpecMode};
use wormdsm_sim::profile::TxnProfiler;
use wormdsm_sim::snap::{Fnv64, Snap, SnapError, SnapReader, SnapWriter};
use wormdsm_sim::stats::BusyTime;
use wormdsm_sim::trace::{FlightRecorder, InvariantViolation, TraceClass, TraceKind, TraceLevel};
use wormdsm_sim::{trace_event, Calendar, Cycle, Registry};

/// Cycles an early fetch waits before retrying at a node whose ownership
/// grant is still in flight (window-of-vulnerability deferral).
const FETCH_RETRY_DELAY: Cycle = 16;

/// Cycles between i-ack post retries when the buffer is full.
const POST_RETRY_DELAY: Cycle = 20;

/// Cycles before the home re-examines a writeback that raced with an
/// outstanding fetch (directory entry in `Waiting`).
const WRITEBACK_RETRY_DELAY: Cycle = 16;

/// How many of the flight recorder's most recent events an
/// [`InvariantViolation`] dump snapshots.
const INVARIANT_DUMP_EVENTS: usize = 64;

/// Why a run stopped before reaching idle (or refused to start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration exceeds a hard limit of the implementation
    /// (mesh larger than `NodeId` can address, VC count beyond the
    /// occupancy bitset, a hierarchy that does not tile the mesh, ...).
    /// Rejected up front by [`DsmSystem::try_new`], before any cycle
    /// runs, so a 16k-node sweep fails in milliseconds instead of
    /// mid-simulation.
    Config(String),
    /// The cycle budget ran out with work still in flight (deadlock or
    /// lost message).
    Timeout(String),
    /// A promoted protocol invariant fired. The payload carries the
    /// flight-recorder context captured at the violation site, so the
    /// failure is diagnosable without a rerun.
    Invariant(Box<InvariantViolation>),
    /// A snapshot stream could not be restored: truncated or corrupt
    /// bytes, an integrity-hash mismatch, or a snapshot taken on a
    /// different configuration/scheme than the system restoring it.
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => f.write_str(msg),
            SimError::Timeout(msg) => f.write_str(msg),
            SimError::Invariant(v) => v.fmt(f),
            SimError::Snapshot(msg) => write!(f, "snapshot restore failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Always-on protocol invariant check: the promoted form of the
/// `debug_assert!`s that used to guard these paths, so release runs audit
/// themselves too. On failure the violation is recorded with
/// flight-recorder context (first one wins, see
/// [`DsmSystem::invariant_violation`]) instead of panicking; the
/// `return;` arm additionally bails out of the handler so it cannot
/// corrupt state further. Runs then surface the violation as
/// [`SimError::Invariant`].
macro_rules! invariant {
    (return; $self:ident, $txn:expr, $cond:expr, $($fmt:tt)+) => {
        if !$cond {
            $self.invariant_failed($txn, format!($($fmt)+));
            return;
        }
    };
    ($self:ident, $txn:expr, $cond:expr, $($fmt:tt)+) => {
        if !$cond {
            $self.invariant_failed($txn, format!($($fmt)+));
        }
    };
}

/// A processor memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Local computation for the given number of cycles.
    Compute(u64),
    /// Shared-memory read.
    Read(Addr),
    /// Shared-memory write.
    Write(Addr),
    /// Barrier with the given id and participant count.
    Barrier {
        /// Barrier identifier (homed at node `id % nodes`).
        id: u16,
        /// Number of arrivals that release the barrier.
        participants: u32,
    },
    /// Acquire a queue lock.
    Lock(u16),
    /// Release a queue lock (does not stall).
    Unlock(u16),
}

/// Processor execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Idle,
    BusyUntil(Cycle),
    Stalled { kind: StallKind, since: Cycle },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallKind {
    Read(BlockId),
    Write(BlockId),
    Barrier(u16),
    Lock(u16),
    /// Release consistency: the operation is deferred until the write
    /// buffer drains (sync ops), frees a slot (buffer full), or the
    /// conflicting pending write completes; retried on each completion.
    Deferred(MemOp),
}

impl StallKind {
    /// Flight-recorder label for this stall reason.
    fn label(self) -> &'static str {
        match self {
            StallKind::Read(_) => "read",
            StallKind::Write(_) => "write",
            StallKind::Barrier(_) => "barrier",
            StallKind::Lock(_) => "lock",
            StallKind::Deferred(_) => "deferred",
        }
    }
}

/// Per-node mutable state.
#[derive(Debug)]
struct NodeCtx {
    cache: Cache,
    wb: WbBuffer,
    dc: BusyTime,
    cc: BusyTime,
    mem: BusyTime,
    proc: ProcState,
    /// Release consistency: writes in flight (block -> issue cycle).
    /// A plain vector scanned linearly: the write buffer is tiny (a few
    /// entries), so the scan beats hashing and the capacity is recycled
    /// across the run instead of reallocating per write.
    pending_writes: Vec<(BlockId, Cycle)>,
    /// An invalidation arrived for the block this node's outstanding read
    /// fill targets: serve the read once but do not install the line.
    poisoned_fill: Option<BlockId>,
}

impl NodeCtx {
    /// True when a write to `block` is still in flight.
    fn write_pending(&self, block: BlockId) -> bool {
        self.pending_writes.iter().any(|&(b, _)| b == block)
    }
}

/// An in-flight invalidation transaction at its home node.
#[derive(Debug)]
struct TxnState {
    block: BlockId,
    home: NodeId,
    writer: NodeId,
    needed: u32,
    got: u32,
    plan: InvalPlan,
    with_data: bool,
    started: Cycle,
    /// Messages sent from / received at the home so far in this
    /// transaction (occupancy proxy).
    home_msgs: u32,
}

#[derive(Debug)]
struct BarrierState {
    expected: u32,
    arrived: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<NodeId>,
    queue: VecDeque<NodeId>,
}

/// Slab of in-flight invalidation transactions.
///
/// Transaction ids are slot-encoded — `id = (seq << SLOT_BITS) | slot` —
/// so the home's per-ack lookup is a direct index instead of a hash probe.
/// The sequence half keeps ids unique across slot reuse (a stale id from a
/// retired transaction misses the `ids[slot]` check instead of aliasing),
/// and `seq` starts at 1 so no live id collides with the `TxnId(0)`
/// sentinel that barrier-release worms carry.
#[derive(Debug, Default)]
struct TxnSlab {
    slots: Vec<Option<TxnState>>,
    /// Full id currently occupying each slot (0 = vacant).
    ids: Vec<u64>,
    /// LIFO free list of vacated slots.
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

/// Low bits of a transaction id that select the slab slot.
const TXN_SLOT_BITS: u32 = 20;

impl TxnSlab {
    /// Concurrent transactions the slab can hold. A documented hard
    /// limit, not a practical one: ids reserve [`TXN_SLOT_BITS`] low bits
    /// for the slot, and even a full 65536-node mesh with every node
    /// holding outstanding writes stays orders of magnitude below 2^20
    /// live transactions. Overflow returns `None` from
    /// [`TxnSlab::insert`]; the caller surfaces it as a recorded
    /// invariant violation ([`SimError::Invariant`]) instead of a panic.
    const CAPACITY: usize = 1 << TXN_SLOT_BITS;

    fn insert(&mut self, t: TxnState) -> Option<TxnId> {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                if self.slots.len() >= Self::CAPACITY {
                    return None;
                }
                self.slots.push(None);
                self.ids.push(0);
                self.slots.len() - 1
            }
        };
        self.seq += 1;
        let id = (self.seq << TXN_SLOT_BITS) | slot as u64;
        self.slots[slot] = Some(t);
        self.ids[slot] = id;
        self.live += 1;
        Some(TxnId(id))
    }

    fn slot_of(&self, id: u64) -> Option<usize> {
        let slot = (id & ((1 << TXN_SLOT_BITS) - 1)) as usize;
        (self.ids.get(slot) == Some(&id)).then_some(slot)
    }

    fn get(&self, id: TxnId) -> Option<&TxnState> {
        self.slot_of(id.0).and_then(|s| self.slots[s].as_ref())
    }

    fn get_mut(&mut self, id: TxnId) -> Option<&mut TxnState> {
        self.slot_of(id.0).and_then(|s| self.slots[s].as_mut())
    }

    /// The id the next [`TxnSlab::insert`] will assign, so callers can
    /// stamp worms with it before constructing the transaction state.
    fn next_id(&self) -> TxnId {
        let slot = self.free.last().map_or(self.slots.len(), |&s| s as usize) as u64;
        TxnId(((self.seq + 1) << TXN_SLOT_BITS) | slot)
    }

    fn remove(&mut self, id: TxnId) -> Option<TxnState> {
        let slot = self.slot_of(id.0)?;
        let t = self.slots[slot].take();
        if t.is_some() {
            self.ids[slot] = 0;
            self.free.push(slot as u32);
            self.live -= 1;
        }
        t
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Calendar events.
#[derive(Debug)]
enum Ev {
    /// A message reached a controller's input; occupy the controller then
    /// handle.
    Recv { node: NodeId, key: u64, acks: u32, kind: DeliveryKind, src: NodeId },
    /// Controller finished processing; run the protocol handler.
    Handle { node: NodeId, key: u64, acks: u32, kind: DeliveryKind, src: NodeId },
    /// Hand a fully built worm to the NIC.
    Inject(WormSpec),
    /// Post an i-ack signal at `node` for `txn`; fall back to a unicast
    /// ack if the buffer is full.
    PostIack { node: NodeId, txn: TxnId },
}

/// The complete simulated DSM machine.
pub struct DsmSystem {
    cfg: SystemConfig,
    scheme: Box<dyn InvalidationScheme>,
    net: Network,
    geom: MemGeometry,
    msgs: MsgTable,
    nodes: Vec<NodeCtx>,
    dirs: Vec<Directory>,
    txns: TxnSlab,
    cal: Calendar<Ev>,
    metrics: Metrics,
    /// Barrier state, indexed by barrier id (ids are small and dense in
    /// every workload, so a lazily grown slot vector replaces hashing).
    barriers: Vec<Option<BarrierState>>,
    /// Lock state, indexed by lock id (same dense-id rationale).
    locks: Vec<Option<LockState>>,
    now: Cycle,
    /// Scratch for draining per-tick delivery worklists without
    /// reallocating (capacity persists across steps).
    delivery_scratch: Vec<NodeId>,
    /// When set (the default), [`DsmSystem::step`] fast-forwards over dead
    /// cycles: if the network is fully idle, time jumps straight to the
    /// next calendar event or processor wake-up instead of ticking empty
    /// cycles one by one. Bit-identical to per-cycle stepping.
    fast_forward: bool,
    /// Cycles elided by dead-cycle fast-forwarding (diagnostics).
    skipped_cycles: u64,
    /// First protocol invariant violation observed (sticky). Once set,
    /// handlers keep bailing out safely but the run's results are
    /// untrustworthy; drivers surface it as [`SimError::Invariant`].
    violation: Option<Box<InvariantViolation>>,
}

impl DsmSystem {
    /// Build an idle system running `scheme`.
    ///
    /// Panics on an invalid configuration or a scheme whose worms are not
    /// conformant under the configured base routing; sweep drivers that
    /// want to skip bad points instead should use [`DsmSystem::try_new`].
    pub fn new(cfg: SystemConfig, scheme: Box<dyn InvalidationScheme>) -> Self {
        match Self::try_new(cfg, scheme) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build an idle system running `scheme`, rejecting configurations
    /// that exceed hard limits (see [`SystemConfig::validate`]) or a
    /// scheme/routing mismatch with [`SimError::Config`] — before any
    /// state is allocated or any cycle runs.
    pub fn try_new(
        cfg: SystemConfig,
        scheme: Box<dyn InvalidationScheme>,
    ) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        if !scheme.compatible_with(cfg.mesh.routing) {
            return Err(SimError::Config(format!(
                "{} is not conformant under {:?}",
                scheme.name(),
                cfg.mesh.routing
            )));
        }
        let n = cfg.nodes();
        let geom = MemGeometry::new(cfg.block_bytes, n);
        let nodes = (0..n)
            .map(|_| NodeCtx {
                cache: Cache::new(cfg.cache_sets),
                wb: WbBuffer::new(),
                dc: BusyTime::new(),
                cc: BusyTime::new(),
                mem: BusyTime::new(),
                proc: ProcState::Idle,
                pending_writes: Vec::new(),
                poisoned_fill: None,
            })
            .collect();
        let dirs = (0..n).map(|_| Directory::new(n)).collect();
        let mut net = Network::new(cfg.mesh.clone());
        // The protocol layer never re-reads a worm after its final
        // delivery, so retired worm slots can be recycled.
        net.set_worm_recycling(true);
        // Adaptive schemes consume the always-on link-load summary; attach
        // the meter before the first cycle so every plan in the run (and
        // in any snapshot-resumed continuation) sees the same committed
        // windows.
        if let Some(window) = scheme.feedback_window() {
            net.enable_link_load(window);
        }
        Ok(Self {
            cfg,
            scheme,
            net,
            geom,
            msgs: MsgTable::new(),
            nodes,
            dirs,
            txns: TxnSlab::default(),
            cal: Calendar::new(),
            metrics: Metrics::new(),
            barriers: Vec::new(),
            locks: Vec::new(),
            now: 0,
            fast_forward: true,
            skipped_cycles: 0,
            delivery_scratch: Vec::new(),
            violation: None,
        })
    }

    /// Enable or disable dead-cycle fast-forwarding (on by default).
    /// Disabling forces per-cycle stepping; results are bit-identical
    /// either way, so this exists for A/B equivalence tests and perf
    /// comparison.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles elided (never individually stepped) by fast-forwarding.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Re-partition the network tick engine into `tiles` row bands at
    /// runtime (see `Network::set_tiles`). Results are bit-identical for
    /// any tile count; only wall time changes.
    pub fn set_tiles(&mut self, tiles: usize) {
        self.net.set_tiles(tiles);
    }

    /// Worker threads the parallel tick pool actually holds (0 when the
    /// engine runs serially). May be fewer than `tiles - 1` on hosts with
    /// little spare parallelism; see `WORMDSM_POOL_WORKERS`.
    pub fn effective_workers(&self) -> usize {
        self.net.effective_workers()
    }

    /// Current tile count of the network tick engine (1 = serial).
    pub fn tiles(&self) -> usize {
        self.net.tiles()
    }

    /// Select how the parallel tick engine handles cross-tile credit
    /// speculation (see [`SpecMode`]). Optimistic (the default) and
    /// Pessimistic are bit-identical to the serial schedule on their own;
    /// Detect requires a driver that rolls poisoned windows back (see
    /// [`DsmSystem::spec_poisoned`]).
    pub fn set_spec_mode(&mut self, mode: SpecMode) {
        self.net.set_spec_mode(mode);
    }

    /// Enable or disable the mesh's express fast path (contention-free
    /// flights reserved at inject and played back from memoized
    /// profiles instead of stepped flit-by-flit; see
    /// `wormdsm_mesh::reserve`). Bit-identical to stepped execution by
    /// construction; off by default. Disabling mid-run materializes any
    /// live reservations first.
    pub fn set_express(&mut self, on: bool) {
        self.net.set_express(on);
    }

    /// True when the express fast path is enabled.
    pub fn express_enabled(&self) -> bool {
        self.net.express_enabled()
    }

    /// Current speculation mode of the parallel tick engine.
    pub fn spec_mode(&self) -> SpecMode {
        self.net.spec_mode()
    }

    /// True when a Detect-mode parallel pass committed a cycle whose
    /// speculation assumptions were violated since the last
    /// [`DsmSystem::clear_spec_poisoned`] — the state may have diverged
    /// from the serial schedule and the window must be rolled back.
    pub fn spec_poisoned(&self) -> bool {
        self.net.spec_poisoned()
    }

    /// Reset the sticky Detect-mode poison latch (called at a window
    /// boundary once the window is committed or rolled back).
    pub fn clear_spec_poisoned(&mut self) {
        self.net.clear_spec_poisoned();
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> &wormdsm_mesh::NetStats {
        self.net.stats()
    }

    // ------------------------------------------------------------------
    // Tracing and invariant auditing.
    // ------------------------------------------------------------------

    /// Set the flight recorder's runtime level. [`TraceLevel::Flit`]
    /// forces the network onto its serial tick schedule so per-hop events
    /// are never lost — results stay bit-identical, only wall time
    /// changes.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.net.set_trace_level(level);
    }

    /// The flight recorder: one time-ordered event stream shared by the
    /// mesh and the protocol layer.
    pub fn recorder(&self) -> &FlightRecorder {
        self.net.recorder()
    }

    /// Mutable flight-recorder access (capacity changes, clearing).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        self.net.recorder_mut()
    }

    /// Attach a record-keeping [`TxnProfiler`] to the flight recorder and
    /// raise the trace level to [`TraceLevel::Flit`] (the profiler only
    /// sees events that pass the level gate, and a meaningful phase
    /// breakdown needs the per-worm events).
    ///
    /// The profiler streams from the recorder's `push` path, so its
    /// attribution is complete even when the ring overflows. It is a pure
    /// observer: results are bit-identical with profiling on or off.
    pub fn enable_profiling(&mut self) {
        self.net.set_trace_level(TraceLevel::Flit);
        let mut p = TxnProfiler::new();
        p.set_keep_records(true);
        self.net.recorder_mut().attach_profiler(p);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&TxnProfiler> {
        self.net.recorder().profiler()
    }

    /// Detach and return the attached profiler, if any.
    pub fn take_profiler(&mut self) -> Option<TxnProfiler> {
        self.net.recorder_mut().take_profiler()
    }

    /// Enable the mesh contention probe: per-link/VC occupancy and
    /// credit-stall accounting in `window`-cycle buckets. Pure observer;
    /// forces the serial network tick schedule while enabled.
    pub fn enable_contention_probe(&mut self, window: Cycle) {
        self.net.enable_contention_probe(window);
    }

    /// The mesh contention probe, if enabled.
    pub fn contention_probe(&self) -> Option<&ContentionProbe> {
        self.net.contention_probe()
    }

    /// Detach and return the contention probe (final window flushed).
    pub fn take_contention_probe(&mut self) -> Option<ContentionProbe> {
        self.net.take_contention_probe()
    }

    /// Flush the contention probe's final partial window in place (see
    /// [`Network::finish_contention_probe`]). Call before reading
    /// [`DsmSystem::contention_probe`] windows from a run whose length is
    /// not a multiple of the probe window.
    pub fn finish_contention_probe(&mut self) {
        self.net.finish_contention_probe();
    }

    /// The link-load summary meter, if the scheme requested one (see
    /// [`InvalidationScheme::feedback_window`]).
    pub fn link_load(&self) -> Option<&LinkLoadMeter> {
        self.net.link_load()
    }

    /// The first protocol invariant violation observed so far, if any.
    ///
    /// The slot is sticky: the promoted checks record the violation and
    /// bail out of their handler instead of panicking, so the simulation
    /// keeps stepping, but any result produced after this returns `Some`
    /// is untrustworthy. [`DsmSystem::run_until_idle`] reports it as
    /// [`SimError::Invariant`].
    pub fn invariant_violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_deref()
    }

    /// Export protocol metrics plus network statistics as one registry
    /// (mesh-level entries carry a `net_` prefix). Includes the flight
    /// recorder's recorded/dropped counters, so ring overflow is visible
    /// in every metrics export instead of only on direct recorder reads.
    pub fn export_metrics(&self) -> Registry {
        let rec = self.net.recorder();
        let mut r = self.metrics.export_with_trace(rec.recorded(), rec.dropped());
        r.absorb("net_", &self.net.stats().export(self.now));
        r
    }

    /// Record a failed protocol invariant: push an `InvariantFired`
    /// marker (unconditionally, so the dump is never empty even at
    /// [`TraceLevel::Off`]), snapshot the recorder, and keep the first
    /// violation.
    #[cold]
    fn invariant_failed(&mut self, txn: Option<TxnId>, what: String) {
        self.metrics.invariant_failures += 1;
        let now = self.now;
        let txn = txn.map(|t| t.0);
        let rec = self.net.recorder_mut();
        rec.push(now, TraceKind::InvariantFired { txn: txn.unwrap_or(0) });
        if self.violation.is_none() {
            self.violation = Some(Box::new(InvariantViolation::capture(
                what,
                now,
                txn,
                self.net.recorder(),
                INVARIANT_DUMP_EVENTS,
            )));
        }
    }

    /// Fold a violation the network recorded (its slot is sticky too)
    /// into the system-level slot.
    #[cold]
    fn absorb_net_violation(&mut self) {
        let what = self.net.violation().expect("caller checked").to_string();
        self.invariant_failed(None, what);
    }

    /// The scheme driving invalidations.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Geometry (block/home mapping).
    pub fn geometry(&self) -> &MemGeometry {
        &self.geom
    }

    /// Directory-controller busy cycles at `node` (home occupancy).
    pub fn dc_busy(&self, node: NodeId) -> u64 {
        self.nodes[node.idx()].dc.total()
    }

    /// True when `node`'s processor can issue a new operation.
    pub fn proc_idle(&self, node: NodeId) -> bool {
        match self.nodes[node.idx()].proc {
            ProcState::Idle => true,
            ProcState::BusyUntil(t) => t <= self.now,
            ProcState::Stalled { .. } => false,
        }
    }

    /// True when every processor is idle and no protocol or network
    /// activity remains.
    pub fn idle(&self) -> bool {
        self.txns.is_empty()
            && self.cal.is_empty()
            && self.net.quiescent()
            && (0..self.nodes.len()).all(|i| self.proc_idle(NodeId(i as u16)))
    }

    /// Advance one cycle.
    ///
    /// With fast-forwarding on (the default), a step taken while the
    /// network is fully idle first jumps the clock to just before the next
    /// scheduled wake-up (calendar event or processor busy-expiry), then
    /// performs one normal cycle. Every skipped cycle would have been a
    /// complete no-op, so runs are bit-identical with or without the jump.
    pub fn step(&mut self) {
        if self.fast_forward {
            self.skip_dead_cycles(None);
        }
        self.step_inner();
    }

    /// One cycle of work: tick the network, route fresh deliveries into
    /// controllers, fire due calendar events.
    fn step_inner(&mut self) {
        self.net.tick();
        self.now = self.net.now();
        // Drain only the nodes the network flagged this tick (ascending,
        // matching a full node sweep) instead of polling every node, and
        // reuse one scratch buffer instead of collecting per node.
        let mut flagged = std::mem::take(&mut self.delivery_scratch);
        self.net.take_delivery_nodes(&mut flagged);
        for &node in &flagged {
            while let Some(d) = self.net.pop_delivery(node) {
                self.on_delivery(d);
            }
        }
        self.delivery_scratch = flagged;
        while let Some((t, ev)) = self.cal.pop_due(self.now) {
            self.handle_event(t.max(self.now), ev);
        }
        if self.violation.is_none() && self.net.violation().is_some() {
            self.absorb_net_violation();
        }
    }

    /// If the network has no work at all, advance the clock to one cycle
    /// before the next event that could change anything: the earliest
    /// calendar entry or the earliest processor busy-expiry, clamped to
    /// `horizon` when one is given. Processors whose busy time already
    /// expired, stalled processors (they wake only via calendar-driven
    /// protocol events) and idle processors impose no boundary. With no
    /// boundary and no horizon, fall back to per-cycle stepping so
    /// `run_until_idle` timeouts still fire on genuine deadlocks.
    fn skip_dead_cycles(&mut self, horizon: Option<Cycle>) {
        // A network whose only activity is live express reservations is
        // dead until their next scheduled event, so that event joins the
        // wake-up boundaries below. Any other pending network work
        // forbids jumping.
        let express_due = if self.net.fully_idle() {
            None
        } else {
            match self.net.express_next_due() {
                due @ Some(_) => due,
                None => return,
            }
        };
        // Non-mutating earliest-event peek: single heap peek in the
        // cancel-free common case, tombstone-aware scan otherwise.
        let mut target = self.cal.peek_next_at();
        if let Some(due) = express_due {
            target = Some(target.map_or(due, |x| x.min(due)));
        }
        for n in &self.nodes {
            if let ProcState::BusyUntil(t) = n.proc {
                if t > self.now {
                    target = Some(target.map_or(t, |x| x.min(t)));
                }
            }
        }
        let t = match (target, horizon) {
            (Some(t), Some(h)) => t.min(h),
            (Some(t), None) => t,
            (None, Some(h)) => h,
            (None, None) => return,
        };
        if t > self.now + 1 {
            let from = self.now;
            self.skipped_cycles += t - 1 - self.now;
            self.net.advance_to(t - 1);
            self.now = t - 1;
            trace_event!(
                self.net.recorder_mut(),
                TraceClass::Txn,
                from,
                TraceKind::FastForward { from, to: t - 1 }
            );
        }
    }

    /// Advance simulated time by exactly `n` cycles.
    ///
    /// Fast-forwarding still applies but is clamped to the `n`-cycle
    /// horizon, so the clock lands exactly on `now + n` and the state
    /// there matches per-cycle stepping bit for bit.
    pub fn run_cycles(&mut self, n: u64) {
        let deadline = self.now + n;
        while self.now < deadline {
            if self.fast_forward {
                self.skip_dead_cycles(Some(deadline));
            }
            self.step_inner();
        }
    }

    /// Run until [`DsmSystem::idle`] or `max` cycles pass.
    ///
    /// Errors are structured: [`SimError::Timeout`] for a deadlock or
    /// lost message, [`SimError::Invariant`] when a promoted protocol
    /// invariant fired mid-run (the violation carries the flight-recorder
    /// dump and offending-transaction timeline).
    pub fn run_until_idle(&mut self, max: Cycle) -> Result<Cycle, SimError> {
        let deadline = self.now + max;
        while !self.idle() {
            if let Some(v) = &self.violation {
                return Err(SimError::Invariant(v.clone()));
            }
            if self.now >= deadline {
                return Err(SimError::Timeout(format!(
                    "system not idle after {max} cycles: {} txns, {} events, {} live worms",
                    self.txns.len(),
                    self.cal.len(),
                    self.net.live_worms()
                )));
            }
            self.step();
        }
        match &self.violation {
            Some(v) => Err(SimError::Invariant(v.clone())),
            None => Ok(self.now),
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / resume.
    // ------------------------------------------------------------------

    /// FNV-1a fingerprint of everything a snapshot assumes about the
    /// machine it is restored into: the full `Debug` rendering of the
    /// configuration plus the scheme name. Restoring into a system whose
    /// fingerprint differs is rejected up front — a snapshot encodes slab
    /// geometries and routing decisions that only replay correctly on the
    /// exact configuration that produced them.
    fn config_fingerprint(cfg: &SystemConfig, scheme: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(format!("{cfg:?}").as_bytes());
        h.write(scheme.as_bytes());
        h.finish()
    }

    /// Serialize the complete simulation state into a self-validating
    /// snapshot stream (`MAGIC | VERSION | payload | FNV-1a 64` framing,
    /// see [`wormdsm_sim::snap`]).
    ///
    /// The stream captures everything that determines future behavior:
    /// the network (routers, NICs, worms, worklists, statistics), the
    /// message table, per-node caches / write buffers / controllers /
    /// processor states, directories, the transaction slab, the event
    /// calendar, metrics, and barrier/lock state. It does **not** capture
    /// the configuration or scheme — [`DsmSystem::restore_snapshot`]
    /// takes those as inputs and verifies them against a recorded
    /// fingerprint. Pure observers (flight recorder, profiler, contention
    /// probe) are deliberately excluded: they never influence results and
    /// restart empty after a restore. The link-load meter is **not** an
    /// observer — its committed windows feed adaptive plans — so it
    /// travels inside the network state. Live express reservations are
    /// materialized back into stepped state first (their profile cache
    /// is a pure memo and does not travel), which is why saving takes
    /// `&mut self`.
    pub fn save_snapshot(&mut self) -> Vec<u8> {
        self.net.materialize_all();
        let mut w = SnapWriter::new();
        w.put_u64(Self::config_fingerprint(&self.cfg, self.scheme.name()));
        w.put_str(self.scheme.name());
        w.put_bool(self.violation.is_some());
        w.put_u64(self.now);
        w.put_u64(self.skipped_cycles);
        w.put_bool(self.fast_forward);
        self.net.save_state(&mut w);
        self.msgs.save(&mut w);
        self.nodes.save(&mut w);
        self.dirs.save(&mut w);
        self.txns.save(&mut w);
        self.cal.save(&mut w);
        self.metrics.save(&mut w);
        self.barriers.save(&mut w);
        self.locks.save(&mut w);
        w.finish()
    }

    /// Rebuild a system from [`DsmSystem::save_snapshot`] bytes.
    ///
    /// `cfg` and `scheme` must match the snapshotting system exactly
    /// (enforced via the recorded fingerprint, checked before any state
    /// is decoded). The restored system continues **bit-identically**
    /// with the original: stepping both from the snapshot point produces
    /// the same metrics, cycle for cycle. Snapshots of runs that already
    /// tripped a protocol invariant are refused — their state is
    /// untrustworthy by definition.
    pub fn restore_snapshot(
        cfg: SystemConfig,
        scheme: Box<dyn InvalidationScheme>,
        bytes: &[u8],
    ) -> Result<Self, SimError> {
        let mut sys = Self::try_new(cfg, scheme)?;
        sys.restore_snapshot_in_place(bytes)?;
        Ok(sys)
    }

    /// Overwrite this system's state with a snapshot taken on the same
    /// configuration and scheme (the recorded fingerprint is enforced, so
    /// a foreign snapshot cannot be applied by mistake). The windowed
    /// speculative driver uses this to roll a poisoned window back
    /// without rebuilding the system.
    ///
    /// Runtime tile count and speculation mode survive the restore (they
    /// are execution-strategy knobs, not simulated state). Observers do
    /// not: the flight recorder restarts empty at its default level, and
    /// any contention probe or profiler is dropped with the old network.
    /// On error the system is left unusable for further stepping (state
    /// may be partially overwritten) — callers must treat a failed
    /// restore as fatal for this instance.
    pub fn restore_snapshot_in_place(&mut self, bytes: &[u8]) -> Result<(), SimError> {
        fn snap_err(e: SnapError) -> SimError {
            SimError::Snapshot(e.to_string())
        }
        let sys = self;
        let tiles = sys.net.tiles();
        let spec = sys.net.spec_mode();
        let express = sys.net.express_enabled();
        let mut r = SnapReader::new(bytes).map_err(snap_err)?;
        let fp = r.get_u64().map_err(snap_err)?;
        let scheme_name = r.get_str().map_err(snap_err)?;
        if scheme_name != sys.scheme.name() {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken under scheme {scheme_name}, restoring under {}",
                sys.scheme.name()
            )));
        }
        if fp != Self::config_fingerprint(&sys.cfg, sys.scheme.name()) {
            return Err(SimError::Snapshot(
                "snapshot configuration fingerprint does not match this system".to_string(),
            ));
        }
        if r.get_bool().map_err(snap_err)? {
            return Err(SimError::Snapshot(
                "snapshot captured a run with a protocol invariant violation".to_string(),
            ));
        }
        sys.now = r.get_u64().map_err(snap_err)?;
        sys.skipped_cycles = r.get_u64().map_err(snap_err)?;
        sys.fast_forward = r.get_bool().map_err(snap_err)?;
        sys.net = Network::load_state(sys.cfg.mesh.clone(), &mut r).map_err(snap_err)?;
        sys.msgs = Snap::load(&mut r).map_err(snap_err)?;
        let nodes: Vec<NodeCtx> = Snap::load(&mut r).map_err(snap_err)?;
        if nodes.len() != sys.cfg.nodes() {
            return Err(SimError::Snapshot(format!(
                "snapshot holds {} nodes, configuration has {}",
                nodes.len(),
                sys.cfg.nodes()
            )));
        }
        sys.nodes = nodes;
        let dirs: Vec<Directory> = Snap::load(&mut r).map_err(snap_err)?;
        if dirs.len() != sys.cfg.nodes() {
            return Err(SimError::Snapshot(format!(
                "snapshot holds {} directories, configuration has {}",
                dirs.len(),
                sys.cfg.nodes()
            )));
        }
        sys.dirs = dirs;
        sys.txns = Snap::load(&mut r).map_err(snap_err)?;
        sys.cal = Calendar::load(&mut r).map_err(snap_err)?;
        sys.metrics = Snap::load(&mut r).map_err(snap_err)?;
        sys.barriers = Snap::load(&mut r).map_err(snap_err)?;
        sys.locks = Snap::load(&mut r).map_err(snap_err)?;
        if !r.is_done() {
            return Err(SimError::Snapshot(format!(
                "{} trailing bytes after the snapshot payload",
                r.remaining()
            )));
        }
        sys.net.set_tiles(tiles);
        sys.net.set_spec_mode(spec);
        // Like tiles and speculation, the express fast path is an
        // execution-strategy knob: it survives the restore (with a fresh
        // profile cache — a pure memo that rebuilds on demand).
        sys.net.set_express(express);
        sys.violation = None;
        sys.delivery_scratch.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Processor interface.
    // ------------------------------------------------------------------

    /// Issue a memory operation on `node`'s processor. Panics when the
    /// processor is not idle (callers poll [`DsmSystem::proc_idle`]).
    pub fn issue(&mut self, node: NodeId, op: MemOp) {
        assert!(self.proc_idle(node), "{node} issued {op:?} while busy");
        let now = self.now;
        let costs = self.cfg.costs;
        match op {
            MemOp::Compute(c) => {
                self.nodes[node.idx()].proc = ProcState::BusyUntil(now + c.max(1));
            }
            MemOp::Read(a) => {
                let block = self.geom.block_of(a);
                if self.nodes[node.idx()].write_pending(block)
                    || self.nodes[node.idx()].wb.contains(block)
                {
                    // Re-touching a block whose own writeback is still
                    // unacknowledged would let the stale writeback race a
                    // re-acquired copy (writeback ABA); wait for the ack.
                    self.stall(node, StallKind::Deferred(op), now);
                    return;
                }
                if self.nodes[node.idx()].cache.read_hit(block) {
                    self.metrics.read_hits += 1;
                    self.nodes[node.idx()].proc = ProcState::BusyUntil(now + costs.cache_access);
                } else {
                    self.metrics.read_misses += 1;
                    self.stall(node, StallKind::Read(block), now);
                    let home = self.geom.home_of(block);
                    let msg = ProtoMsg::ReadReq { block, requester: node };
                    self.send_cc(node, now + costs.cache_access, msg, home, VNet::Req);
                }
            }
            MemOp::Write(a) => {
                let block = self.geom.block_of(a);
                // A read or write to a block with a write already in
                // flight — or with this node's own writeback still
                // unacknowledged (writeback ABA) — waits for it.
                if self.nodes[node.idx()].write_pending(block)
                    || self.nodes[node.idx()].wb.contains(block)
                {
                    self.stall(node, StallKind::Deferred(op), now);
                    return;
                }
                if self.nodes[node.idx()].cache.write_hit(block) {
                    self.metrics.write_hits += 1;
                    self.nodes[node.idx()].proc = ProcState::BusyUntil(now + costs.cache_access);
                    return;
                }
                match self.cfg.consistency {
                    ConsistencyModel::Sequential => {
                        self.metrics.write_misses += 1;
                        self.stall(node, StallKind::Write(block), now);
                    }
                    ConsistencyModel::Release { write_buffer } => {
                        if self.nodes[node.idx()].pending_writes.len() >= write_buffer {
                            // Buffer full: retry when a write retires
                            // (deferral is not a miss yet).
                            self.stall(node, StallKind::Deferred(op), now);
                            return;
                        }
                        self.metrics.write_misses += 1;
                        self.nodes[node.idx()].pending_writes.push((block, now));
                        self.nodes[node.idx()].proc =
                            ProcState::BusyUntil(now + costs.cache_access);
                    }
                }
                let home = self.geom.home_of(block);
                // Upgrade detection must not count as a processor access:
                // probe (side-effect-free) rather than read_hit, so a
                // Shared copy upgrades and anything else is a write miss.
                let msg = if self.nodes[node.idx()].cache.probe(block).is_some() {
                    ProtoMsg::UpgradeReq { block, requester: node }
                } else {
                    ProtoMsg::WriteReq { block, requester: node }
                };
                self.send_cc(node, now + costs.cache_access, msg, home, VNet::Req);
            }
            MemOp::Barrier { id, participants } => {
                if self.release_fence_pending(node, op, now) {
                    return;
                }
                self.stall(node, StallKind::Barrier(id), now);
                let home = self.service_home(id);
                let msg = ProtoMsg::BarrierArrive { barrier: id, participants };
                self.send_cc(node, now, msg, home, VNet::Req);
            }
            MemOp::Lock(l) => {
                self.stall(node, StallKind::Lock(l), now);
                let home = self.service_home(l);
                self.send_cc(
                    node,
                    now,
                    ProtoMsg::LockReq { lock: l, requester: node },
                    home,
                    VNet::Req,
                );
            }
            MemOp::Unlock(l) => {
                if self.release_fence_pending(node, op, now) {
                    return;
                }
                let home = self.service_home(l);
                self.send_cc(node, now, ProtoMsg::LockRelease { lock: l }, home, VNet::Req);
                // Release costs the CC but does not stall the processor.
                self.nodes[node.idx()].proc = ProcState::BusyUntil(now + costs.cc_send);
            }
        }
    }

    /// Home node of a barrier/lock id.
    fn service_home(&self, id: u16) -> NodeId {
        NodeId(id % self.nodes.len() as u16)
    }

    /// Release-consistency fence: a releasing synchronization operation
    /// waits until the write buffer drains. Returns true when the op was
    /// deferred.
    fn release_fence_pending(&mut self, node: NodeId, op: MemOp, now: Cycle) -> bool {
        if !self.nodes[node.idx()].pending_writes.is_empty() {
            self.stall(node, StallKind::Deferred(op), now);
            true
        } else {
            false
        }
    }

    /// A deferred op retries whenever a pending write retires.
    fn retry_deferred(&mut self, now: Cycle, node: NodeId) {
        if let ProcState::Stalled { kind: StallKind::Deferred(op), .. } =
            self.nodes[node.idx()].proc
        {
            self.nodes[node.idx()].proc = ProcState::Idle;
            self.issue_at(node, op, now);
        }
    }

    /// Internal re-issue path used by deferred retries (bypasses the
    /// public `proc_idle` gate which compares against `self.now`).
    fn issue_at(&mut self, node: NodeId, op: MemOp, now: Cycle) {
        let saved = self.now;
        self.now = now;
        self.issue(node, op);
        self.now = saved.max(now);
    }

    // ------------------------------------------------------------------
    // Coherence invariant checking.
    // ------------------------------------------------------------------

    /// Verify the global coherence invariants. Intended to be called when
    /// the system is idle (no transient states in flight):
    ///
    /// * **SWMR** — a block in `Exclusive(o)` is cached Modified at `o`
    ///   and nowhere else; no two caches ever hold it writable.
    /// * **Shared agreement** — a block in `Shared` is held (if at all)
    ///   only in `Shared` state, and only by nodes whose presence bit is
    ///   set (silent clean eviction makes presence a superset).
    /// * **Uncached purity** — an `Uncached` block is in no cache.
    /// * **No residue** — no directory entry is left `Waiting` and no
    ///   invalidation transaction is open.
    ///
    /// Returns a diagnostic for the first violation found.
    pub fn verify_coherence(&self) -> Result<(), String> {
        if !self.txns.is_empty() {
            return Err(format!("{} invalidation transactions still open", self.txns.len()));
        }
        for (h, dir) in self.dirs.iter().enumerate() {
            let home = NodeId(h as u16);
            for block in dir.blocks() {
                let entry = dir.entry(block).expect("listed block exists");
                match entry.state {
                    DirState::Uncached => {
                        for (i, n) in self.nodes.iter().enumerate() {
                            if let Some(st) = n.cache.state(block) {
                                return Err(format!(
                                    "{block} uncached at home {home} but cached {st:?} at n{i}"
                                ));
                            }
                        }
                    }
                    DirState::Shared => {
                        for (i, n) in self.nodes.iter().enumerate() {
                            match n.cache.state(block) {
                                Some(LineState::Modified) => {
                                    return Err(format!(
                                        "{block} shared at home {home} but Modified at n{i}"
                                    ));
                                }
                                Some(LineState::Shared)
                                    if !entry.has_presence(NodeId(i as u16)) =>
                                {
                                    return Err(format!(
                                        "{block} cached at n{i} without a presence bit"
                                    ));
                                }
                                Some(LineState::Shared) => {}
                                None => {}
                            }
                        }
                    }
                    DirState::Exclusive(owner) => {
                        for (i, n) in self.nodes.iter().enumerate() {
                            let st = n.cache.state(block);
                            if NodeId(i as u16) == owner {
                                // The owner may have a writeback in flight
                                // only while the system is not idle; at
                                // idle it must hold the line Modified.
                                if st != Some(LineState::Modified) {
                                    return Err(format!(
                                        "{block} exclusive at {owner} but its cache holds {st:?}"
                                    ));
                                }
                            } else if st.is_some() {
                                return Err(format!(
                                    "{block} exclusive at {owner} but also cached {st:?} at n{i} (SWMR violation)"
                                ));
                            }
                        }
                    }
                    DirState::Waiting => {
                        return Err(format!("{block} left in Waiting at home {home}"));
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Test/bench seams.
    // ------------------------------------------------------------------

    /// Seed `block` as Shared at `sharers` (directory + caches), bypassing
    /// the protocol — used by single-transaction experiments to set up an
    /// invalidation pattern directly.
    pub fn seed_shared(&mut self, block: BlockId, sharers: &[NodeId]) {
        let home = self.geom.home_of(block);
        let entry = self.dirs[home.idx()].entry_mut(block);
        assert_eq!(entry.state, DirState::Uncached, "seed on a fresh block");
        entry.state = DirState::Shared;
        for &s in sharers {
            entry.set_presence(s);
            self.nodes[s.idx()].cache.insert(block, LineState::Shared);
        }
    }

    /// Cache state of `block` at `node` (tests).
    pub fn cache_state(&self, node: NodeId, block: BlockId) -> Option<LineState> {
        self.nodes[node.idx()].cache.state(block)
    }

    /// Directory state of `block` (tests).
    pub fn dir_state(&self, block: BlockId) -> DirState {
        let home = self.geom.home_of(block);
        self.dirs[home.idx()].state(block)
    }

    /// Deliver a forged protocol message straight into `node`'s
    /// controller, bypassing the network — used by tests to exercise the
    /// always-on invariant auditing with malformed traffic.
    #[doc(hidden)]
    pub fn debug_deliver(&mut self, node: NodeId, msg: ProtoMsg, acks: u32, src: NodeId) {
        let key = self.msgs.push(msg);
        self.recv(self.now, node, key, acks, DeliveryKind::Final, src);
    }

    /// Ids of the invalidation transactions currently open (tests).
    #[doc(hidden)]
    pub fn open_txn_ids(&self) -> Vec<TxnId> {
        self.txns.ids.iter().filter(|&&id| id != 0).map(|&id| TxnId(id)).collect()
    }

    // ------------------------------------------------------------------
    // Message plumbing.
    // ------------------------------------------------------------------

    /// Send `msg` from `node`'s cache controller at `start` (occupying it
    /// for the compose cost) to `dest`.
    fn send_cc(
        &mut self,
        node: NodeId,
        start: Cycle,
        msg: ProtoMsg,
        dest: NodeId,
        vnet: VNet,
    ) -> Cycle {
        let t = self.nodes[node.idx()].cc.occupy(start.max(self.now), self.cfg.costs.cc_send);
        self.dispatch_unicast(node, t, msg, dest, vnet);
        t
    }

    /// Send `msg` from `node`'s directory controller at `start`.
    fn send_dc(
        &mut self,
        node: NodeId,
        start: Cycle,
        msg: ProtoMsg,
        dest: NodeId,
        vnet: VNet,
    ) -> Cycle {
        let t = self.nodes[node.idx()].dc.occupy(start.max(self.now), self.cfg.costs.dc_send);
        self.dispatch_unicast(node, t, msg, dest, vnet);
        t
    }

    fn dispatch_unicast(
        &mut self,
        node: NodeId,
        t: Cycle,
        msg: ProtoMsg,
        dest: NodeId,
        vnet: VNet,
    ) {
        let key = self.msgs.push(msg);
        if dest == node {
            // Local shortcut: no network, straight to the co-located
            // controller input.
            self.cal.schedule(
                t,
                Ev::Recv { node: dest, key, acks: 0, kind: DeliveryKind::Final, src: node },
            );
        } else {
            let len = self.cfg.sizes.unicast_len(&msg);
            let spec = WormSpec::unicast(node, dest, vnet, len, key);
            self.cal.schedule(t, Ev::Inject(spec));
        }
    }

    /// Build the network worm for a planned worm of transaction `txn`.
    fn build_spec(
        &mut self,
        src: NodeId,
        w: &PlannedWorm,
        txn: TxnId,
        block: BlockId,
        home: NodeId,
    ) -> WormSpec {
        let msg = match w.kind {
            WormKind::Gather => {
                let last = *w.dests.last().expect("non-empty");
                if last == home || w.gather_deposit {
                    ProtoMsg::GatherAck { block, txn }
                } else {
                    ProtoMsg::SweepTrigger { block, txn }
                }
            }
            _ if w.relay => ProtoMsg::RelayInval { block, txn, home },
            _ => ProtoMsg::Inval { block, txn, home },
        };
        let key = self.msgs.push(msg);
        let len = match w.kind {
            WormKind::Gather => self.cfg.sizes.gather_len(),
            WormKind::Unicast => self.cfg.sizes.unicast_len(&msg),
            WormKind::Multicast => self.cfg.sizes.multicast_len(&msg, w.delivering()),
        };
        WormSpec {
            src,
            vnet: if w.kind == WormKind::Gather { VNet::Reply } else { VNet::Req },
            kind: w.kind,
            dests: w.dests.as_slice().into(),
            len_flits: len,
            payload: key,
            reserve_iack: w.reserve_iack,
            txn,
            initial_acks: w.initial_acks,
            gather_deposit: w.gather_deposit,
            deliver: w.deliver.as_deref().map(Into::into),
        }
    }

    /// Route a network delivery into the right controller.
    fn on_delivery(&mut self, d: Delivery) {
        self.recv(self.now, d.node, d.payload, d.acks, d.kind, d.src);
    }

    /// A message arrived at `node`: occupy the owning controller, then
    /// schedule the protocol handler.
    fn recv(
        &mut self,
        now: Cycle,
        node: NodeId,
        key: u64,
        acks: u32,
        kind: DeliveryKind,
        src: NodeId,
    ) {
        let msg = self.msgs.get(key);
        let costs = self.cfg.costs;
        let _ = kind;
        let is_dc = self.is_dc_message(node, &msg);
        let t = if is_dc {
            self.nodes[node.idx()].dc.occupy(now, costs.dc_proc)
        } else {
            self.nodes[node.idx()].cc.occupy(now, costs.cc_proc)
        };
        self.cal.schedule(t, Ev::Handle { node, key, acks, kind, src });
    }

    /// Directory-controller messages (home-bound protocol traffic).
    fn is_dc_message(&self, node: NodeId, msg: &ProtoMsg) -> bool {
        match msg {
            ProtoMsg::ReadReq { .. }
            | ProtoMsg::WriteReq { .. }
            | ProtoMsg::UpgradeReq { .. }
            | ProtoMsg::InvAck { .. }
            | ProtoMsg::FetchWb { .. }
            | ProtoMsg::Writeback { .. }
            | ProtoMsg::BarrierArrive { .. }
            | ProtoMsg::LockReq { .. }
            | ProtoMsg::LockRelease { .. } => true,
            ProtoMsg::GatherAck { txn, .. } => {
                debug_assert!(self.txns.get(*txn).is_none_or(|t| t.home == node));
                true
            }
            _ => false,
        }
    }

    fn handle_event(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::Recv { node, key, acks, kind, src } => self.recv(now, node, key, acks, kind, src),
            Ev::Handle { node, key, acks, kind, src } => {
                let msg = self.msgs.get(key);
                self.dispatch(now, node, msg, key, acks, kind, src);
            }
            Ev::Inject(spec) => {
                self.net.inject(spec);
            }
            Ev::PostIack { node, txn } => {
                if !self.net.post_iack(node, txn) {
                    // Buffer full: retry. The retry always eventually
                    // succeeds — once this post's own gather parks in an
                    // entry, the post resolves into it without needing a
                    // free slot — and falling back to a unicast ack would
                    // strand that gather forever.
                    self.metrics.iack_fallbacks += 1;
                    self.cal.schedule(now + POST_RETRY_DELAY, Ev::PostIack { node, txn });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Protocol FSM.
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: Cycle,
        node: NodeId,
        msg: ProtoMsg,
        key: u64,
        acks: u32,
        _kind: DeliveryKind,
        src: NodeId,
    ) {
        match msg {
            ProtoMsg::ReadReq { block, requester } => {
                self.h_read_req(now, node, block, requester, key)
            }
            ProtoMsg::WriteReq { block, requester } | ProtoMsg::UpgradeReq { block, requester } => {
                self.h_write_req(now, node, block, requester, key)
            }
            ProtoMsg::ReadReply { block } => self.h_read_reply(now, node, block),
            ProtoMsg::Inval { block, txn, home } => self.h_inval(now, node, block, txn, home),
            ProtoMsg::RelayInval { block, txn, home } => self.h_relay(now, node, block, txn, home),
            ProtoMsg::InvAck { txn, count, .. } => self.h_acks(now, node, txn, count),
            ProtoMsg::GatherAck { txn, .. } => self.h_acks(now, node, txn, acks),
            ProtoMsg::SweepTrigger { block, txn } => {
                self.h_sweep_trigger(now, node, block, txn, acks)
            }
            ProtoMsg::WriteGrant { block, with_data } => {
                self.h_write_grant(now, node, block, with_data)
            }
            ProtoMsg::Fetch { block, requester, for_write } => {
                self.h_fetch(now, node, block, requester, for_write)
            }
            ProtoMsg::OwnerData { block, exclusive } => {
                self.h_owner_data(now, node, block, exclusive)
            }
            ProtoMsg::FetchWb { block, requester, was_write } => {
                self.h_fetch_wb(now, node, block, requester, was_write, src)
            }
            ProtoMsg::Writeback { block, owner } => self.h_writeback(now, node, block, owner, key),
            ProtoMsg::WritebackAck { block } => {
                self.nodes[node.idx()].wb.release(block);
                // An access deferred behind this writeback can now retry.
                self.retry_deferred(now, node);
            }
            ProtoMsg::BarrierArrive { barrier, participants } => {
                self.h_barrier_arrive(now, node, barrier, participants, src)
            }
            ProtoMsg::BarrierRelease { barrier } => {
                self.resume_sync(now, node, StallKind::Barrier(barrier))
            }
            ProtoMsg::LockReq { lock, requester } => self.h_lock_req(now, node, lock, requester),
            ProtoMsg::LockGrant { lock } => self.resume_sync(now, node, StallKind::Lock(lock)),
            ProtoMsg::LockRelease { lock } => self.h_lock_release(now, node, lock),
        }
    }

    fn h_read_req(
        &mut self,
        now: Cycle,
        home: NodeId,
        block: BlockId,
        requester: NodeId,
        key: u64,
    ) {
        let costs = self.cfg.costs;
        match self.dirs[home.idx()].state(block) {
            DirState::Uncached | DirState::Shared => {
                let t = self.nodes[home.idx()].mem.occupy(now, costs.mem_access);
                let entry = self.dirs[home.idx()].entry_mut(block);
                entry.state = DirState::Shared;
                entry.set_presence(requester);
                self.send_dc(home, t, ProtoMsg::ReadReply { block }, requester, VNet::Reply);
            }
            DirState::Exclusive(owner) => {
                let entry = self.dirs[home.idx()].entry_mut(block);
                entry.state = DirState::Waiting;
                self.send_dc(
                    home,
                    now,
                    ProtoMsg::Fetch { block, requester, for_write: false },
                    owner,
                    VNet::Req,
                );
            }
            DirState::Waiting => {
                self.dirs[home.idx()]
                    .entry_mut(block)
                    .queue
                    .push_back(wormdsm_coherence::QueuedReq { node: requester, msg_key: key });
            }
        }
    }

    fn h_write_req(
        &mut self,
        now: Cycle,
        home: NodeId,
        block: BlockId,
        requester: NodeId,
        key: u64,
    ) {
        let costs = self.cfg.costs;
        match self.dirs[home.idx()].state(block) {
            DirState::Uncached => {
                let t = self.nodes[home.idx()].mem.occupy(now, costs.mem_access);
                let entry = self.dirs[home.idx()].entry_mut(block);
                entry.state = DirState::Exclusive(requester);
                entry.clear_all();
                self.send_dc(
                    home,
                    t,
                    ProtoMsg::WriteGrant { block, with_data: true },
                    requester,
                    VNet::Reply,
                );
            }
            DirState::Shared => self.start_invalidation(now, home, block, requester),
            DirState::Exclusive(owner) => {
                debug_assert_ne!(owner, requester, "owner write-missing its own block");
                let entry = self.dirs[home.idx()].entry_mut(block);
                entry.state = DirState::Waiting;
                self.send_dc(
                    home,
                    now,
                    ProtoMsg::Fetch { block, requester, for_write: true },
                    owner,
                    VNet::Req,
                );
            }
            DirState::Waiting => {
                self.dirs[home.idx()]
                    .entry_mut(block)
                    .queue
                    .push_back(wormdsm_coherence::QueuedReq { node: requester, msg_key: key });
            }
        }
    }

    /// The heart of the reproduction: run the configured scheme over the
    /// sharer set.
    fn start_invalidation(&mut self, now: Cycle, home: NodeId, block: BlockId, writer: NodeId) {
        let costs = self.cfg.costs;
        let with_data = !self.dirs[home.idx()].entry_mut(block).has_presence(writer);

        // Invalidate the home's own copy locally (no network message).
        if home != writer && self.dirs[home.idx()].entry_mut(block).has_presence(home) {
            self.invalidate_local(home, block);
            self.dirs[home.idx()].entry_mut(block).clear_presence(home);
        }

        let remote: Vec<NodeId> = self.dirs[home.idx()]
            .entry_mut(block)
            .sharers_except(writer)
            .into_iter()
            .filter(|&s| s != home)
            .collect();

        if remote.is_empty() {
            // Fast path: nothing remote to invalidate.
            let entry = self.dirs[home.idx()].entry_mut(block);
            entry.state = DirState::Exclusive(writer);
            entry.clear_all();
            self.send_dc(home, now, ProtoMsg::WriteGrant { block, with_data }, writer, VNet::Reply);
            return;
        }

        let mesh = self.cfg.mesh.mesh;
        // Adaptive schemes read the committed link-load summary; static
        // schemes ignore it (default `plan_with_load` forwards to `plan`).
        let plan = self.scheme.plan_with_load(&mesh, home, &remote, self.net.link_load());
        debug_assert!(
            crate::plan::validate_plan(&plan, &remote).is_ok(),
            "{:?}",
            crate::plan::validate_plan(&plan, &remote)
        );
        let needed = plan.needed;
        let txn_id = self.txns.next_id();
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            now,
            TraceKind::TxnOpen {
                txn: txn_id.0,
                block: block.0,
                home: home.idx() as u32,
                writer: writer.idx() as u32,
                needed,
            }
        );

        self.dirs[home.idx()].entry_mut(block).state = DirState::Waiting;

        // Inject request worms, serializing through the DC (the occupancy
        // effect the paper measures).
        let mut t = now;
        let mut home_msgs = 1; // the write request itself
        for w in &plan.request_worms {
            let spec = self.build_spec(home, w, txn_id, block, home);
            t = self.nodes[home.idx()].dc.occupy(t, costs.dc_send);
            self.cal.schedule(t, Ev::Inject(spec));
            home_msgs += 1;
        }

        let inserted = self.txns.insert(TxnState {
            block,
            home,
            writer,
            needed: plan.needed,
            got: 0,
            plan,
            with_data,
            started: now,
            home_msgs,
        });
        invariant!(
            return;
            self,
            Some(txn_id),
            inserted.is_some(),
            "transaction slab overflow: {} transactions in flight exceeds the {}-slot id space",
            self.txns.len(),
            TxnSlab::CAPACITY
        );
        debug_assert_eq!(inserted, Some(txn_id));
    }

    /// Invalidate `block` in `node`'s cache, handling the late-fill race:
    /// if the line is absent because a read fill is still in flight, the
    /// fill is *poisoned* — the read's value is still returned (it is
    /// ordered before the write under the directory's serialization), but
    /// the stale line is not installed.
    fn invalidate_local(&mut self, node: NodeId, block: BlockId) {
        if self.nodes[node.idx()].cache.invalidate(block).is_some() {
            return;
        }
        let fill_in_flight = matches!(
            self.nodes[node.idx()].proc,
            ProcState::Stalled { kind: StallKind::Read(b), .. } if b == block
        );
        if fill_in_flight {
            // Idempotent: a second transaction can invalidate the same
            // outstanding fill (its FetchWb re-set our presence bit at the
            // home before the OwnerData reached us). One outstanding read
            // means any existing poison is for this same block.
            debug_assert!(
                self.nodes[node.idx()].poisoned_fill.is_none_or(|b| b == block),
                "poison for a different block than the outstanding read"
            );
            self.nodes[node.idx()].poisoned_fill = Some(block);
            self.metrics.poisoned_fills += 1;
        } else {
            self.metrics.spurious_invals += 1;
        }
    }

    fn h_inval(&mut self, now: Cycle, node: NodeId, block: BlockId, txn: TxnId, home: NodeId) {
        let costs = self.cfg.costs;
        self.invalidate_local(node, block);
        let Some(action) = self.txns.get(txn).and_then(|t| t.plan.action_for(node)).cloned() else {
            self.invariant_failed(
                Some(txn),
                format!("invalidation of {block} delivered to {node} with no planned action"),
            );
            return;
        };
        self.perform_ack_action(now + costs.cache_access, node, block, txn, home, &action);
    }

    fn perform_ack_action(
        &mut self,
        start: Cycle,
        node: NodeId,
        block: BlockId,
        txn: TxnId,
        home: NodeId,
        action: &AckAction,
    ) {
        let costs = self.cfg.costs;
        match action {
            AckAction::Unicast => {
                self.send_cc(
                    node,
                    start,
                    ProtoMsg::InvAck { block, txn, count: 1 },
                    home,
                    VNet::Reply,
                );
            }
            AckAction::Post => {
                let t = self.nodes[node.idx()].cc.occupy(start, costs.iack_post);
                self.cal.schedule(t, Ev::PostIack { node, txn });
            }
            AckAction::InitGather(w) => {
                let spec = self.build_spec(node, w, txn, block, home);
                let t = self.nodes[node.idx()].cc.occupy(start, costs.cc_send);
                self.cal.schedule(t, Ev::Inject(spec));
            }
        }
    }

    fn h_relay(&mut self, now: Cycle, node: NodeId, block: BlockId, txn: TxnId, home: NodeId) {
        let costs = self.cfg.costs;
        let (worms, action) = {
            let t = self.txns.get(txn).expect("txn live");
            let worms: Vec<PlannedWorm> = t
                .plan
                .relays
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, ws)| ws.clone())
                .unwrap_or_default();
            (worms, t.plan.action_for(node).cloned())
        };
        let mut t = now;
        for w in &worms {
            let spec = self.build_spec(node, w, txn, block, home);
            t = self.nodes[node.idx()].cc.occupy(t, costs.cc_send);
            self.cal.schedule(t, Ev::Inject(spec));
        }
        // A delegate that is itself a sharer invalidates and acks too.
        if let Some(action) = action {
            self.invalidate_local(node, block);
            self.perform_ack_action(t + costs.cache_access, node, block, txn, home, &action);
        }
    }

    fn h_sweep_trigger(&mut self, now: Cycle, node: NodeId, block: BlockId, txn: TxnId, acks: u32) {
        let costs = self.cfg.costs;
        let (mut sweep, home) = {
            let t = self.txns.get(txn).expect("txn live");
            (t.plan.trigger_for(node).cloned().expect("sweep trigger has a planned worm"), t.home)
        };
        sweep.initial_acks += acks;
        let spec = self.build_spec(node, &sweep, txn, block, home);
        let t = self.nodes[node.idx()].cc.occupy(now, costs.cc_send);
        self.cal.schedule(t, Ev::Inject(spec));
    }

    /// Acks arrived at the home (unicast count or gathered count).
    fn h_acks(&mut self, now: Cycle, home: NodeId, txn: TxnId, count: u32) {
        match self.txns.get(txn).map(|t| t.home) {
            None => {
                self.invariant_failed(
                    Some(txn),
                    format!("{count} ack(s) arrived at {home} for a dead transaction"),
                );
                return;
            }
            Some(h) if h != home => {
                self.invariant_failed(
                    Some(txn),
                    format!("ack(s) arrived at {home} for a transaction homed at {h}"),
                );
                return;
            }
            Some(_) => {}
        }
        let t = self.txns.get_mut(txn).expect("liveness checked above");
        t.got += count;
        t.home_msgs += 1;
        let (got, needed) = (t.got, t.needed);
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            now,
            TraceKind::TxnAck { txn: txn.0, count, got, needed }
        );
        if got >= needed {
            self.complete_invalidation(now, txn);
        }
    }

    fn complete_invalidation(&mut self, now: Cycle, txn: TxnId) {
        let Some(t) = self.txns.remove(txn) else {
            self.invariant_failed(Some(txn), "completing a dead transaction".to_string());
            return;
        };
        invariant!(
            self,
            Some(txn),
            t.got == t.needed,
            "over-collected acks: got {} of {} needed",
            t.got,
            t.needed
        );
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            now,
            TraceKind::TxnClose { txn: txn.0, latency: now - t.started, set_size: t.needed }
        );
        self.metrics.inval_txns += 1;
        self.metrics.inval_latency.record((now - t.started) as f64);
        self.metrics.inval_set_size.record(t.needed as u64);
        // +1: the grant the home is about to send.
        self.metrics.inval_home_msgs.record((t.home_msgs + 1) as f64);

        let entry = self.dirs[t.home.idx()].entry_mut(t.block);
        entry.state = DirState::Exclusive(t.writer);
        entry.clear_all();
        let queued: Vec<wormdsm_coherence::QueuedReq> = entry.queue.drain(..).collect();
        self.send_dc(
            t.home,
            now,
            ProtoMsg::WriteGrant { block: t.block, with_data: t.with_data },
            t.writer,
            VNet::Reply,
        );
        // Replay queued requests against the settled directory state.
        for q in queued {
            self.recv(now, t.home, q.msg_key, 0, DeliveryKind::Final, q.node);
        }
    }

    fn h_read_reply(&mut self, now: Cycle, node: NodeId, block: BlockId) {
        if self.take_poison(node, block) {
            // Serve the read without installing the invalidated line.
            self.resume_mem(now, node, StallKind::Read(block));
            return;
        }
        self.install_line(now, node, block, LineState::Shared);
        self.resume_mem(now, node, StallKind::Read(block));
    }

    /// Consume a pending fill poison for `block`, if set.
    fn take_poison(&mut self, node: NodeId, block: BlockId) -> bool {
        if self.nodes[node.idx()].poisoned_fill == Some(block) {
            self.nodes[node.idx()].poisoned_fill = None;
            true
        } else {
            false
        }
    }

    fn h_write_grant(&mut self, now: Cycle, node: NodeId, block: BlockId, with_data: bool) {
        if with_data {
            self.install_line(now, node, block, LineState::Modified);
        } else if !self.nodes[node.idx()].cache.upgrade(block) {
            // The copy vanished between the upgrade request and the grant
            // (conflict eviction is impossible while stalled, so this is a
            // protocol bug if it fires).
            self.install_line(now, node, block, LineState::Modified);
        }
        self.complete_write(now, node, block);
    }

    /// A write's permission arrived: resume a stalled SC writer or retire
    /// the RC write-buffer entry.
    fn complete_write(&mut self, now: Cycle, node: NodeId, block: BlockId) {
        if let ProcState::Stalled { kind: StallKind::Write(b), .. } = self.nodes[node.idx()].proc {
            invariant!(
                return; self, None, b == block,
                "{node} write completion for {block} but the processor is stalled on {b}"
            );
            self.resume_mem(now, node, StallKind::Write(block));
            return;
        }
        let Some(i) = self.nodes[node.idx()].pending_writes.iter().position(|&(b, _)| b == block)
        else {
            self.invariant_failed(
                None,
                format!("{node} write completion for {block} matches no pending write"),
            );
            return;
        };
        let (_, issued) = self.nodes[node.idx()].pending_writes.swap_remove(i);
        self.metrics.write_latency.record((now - issued) as f64);
        self.retry_deferred(now, node);
    }

    fn h_fetch(
        &mut self,
        now: Cycle,
        owner: NodeId,
        block: BlockId,
        requester: NodeId,
        for_write: bool,
    ) {
        let costs = self.cfg.costs;
        let in_cache = self.nodes[owner.idx()].cache.state(block) == Some(LineState::Modified);
        let in_wb = self.nodes[owner.idx()].wb.contains(block);
        if !in_cache && !in_wb {
            // Window of vulnerability [23]: the fetch (short, request net)
            // overtook this node's own data-carrying grant (long, reply
            // net). Defer and retry once the grant lands.
            self.metrics.fetch_retries += 1;
            let key = self.msgs.push(ProtoMsg::Fetch { block, requester, for_write });
            self.cal.schedule(
                now + FETCH_RETRY_DELAY,
                Ev::Recv { node: owner, key, acks: 0, kind: DeliveryKind::Final, src: owner },
            );
            return;
        }
        if in_cache {
            if for_write {
                self.nodes[owner.idx()].cache.invalidate(block);
            } else {
                self.nodes[owner.idx()].cache.downgrade(block);
            }
        }
        let t = self.send_cc(
            owner,
            now + costs.cache_access,
            ProtoMsg::OwnerData { block, exclusive: for_write },
            requester,
            VNet::Reply,
        );
        self.send_cc(
            owner,
            t,
            ProtoMsg::FetchWb { block, requester, was_write: for_write },
            self.geom.home_of(block),
            VNet::Reply,
        );
    }

    fn h_owner_data(&mut self, now: Cycle, node: NodeId, block: BlockId, exclusive: bool) {
        if exclusive {
            self.install_line(now, node, block, LineState::Modified);
            self.complete_write(now, node, block);
        } else {
            if self.take_poison(node, block) {
                self.resume_mem(now, node, StallKind::Read(block));
                return;
            }
            self.install_line(now, node, block, LineState::Shared);
            self.resume_mem(now, node, StallKind::Read(block));
        }
    }

    fn h_fetch_wb(
        &mut self,
        now: Cycle,
        home: NodeId,
        block: BlockId,
        requester: NodeId,
        was_write: bool,
        old_owner: NodeId,
    ) {
        let costs = self.cfg.costs;
        let _t = self.nodes[home.idx()].mem.occupy(now, costs.mem_access);
        let entry = self.dirs[home.idx()].entry_mut(block);
        entry.clear_all();
        if was_write {
            entry.state = DirState::Exclusive(requester);
        } else {
            entry.state = DirState::Shared;
            entry.set_presence(old_owner);
            entry.set_presence(requester);
        }
        let queued: Vec<wormdsm_coherence::QueuedReq> = entry.queue.drain(..).collect();
        for q in queued {
            self.recv(now, home, q.msg_key, 0, DeliveryKind::Final, q.node);
        }
    }

    fn h_writeback(&mut self, now: Cycle, home: NodeId, block: BlockId, owner: NodeId, key: u64) {
        let costs = self.cfg.costs;
        match self.dirs[home.idx()].state(block) {
            DirState::Exclusive(o) if o == owner => {
                let t = self.nodes[home.idx()].mem.occupy(now, costs.mem_access);
                let entry = self.dirs[home.idx()].entry_mut(block);
                entry.state = DirState::Uncached;
                entry.clear_all();
                self.send_dc(home, t, ProtoMsg::WritebackAck { block }, owner, VNet::Reply);
            }
            DirState::Waiting => {
                // The writeback raced with a fetch the home already sent.
                // Acknowledging now would let the owner free its writeback
                // buffer before the fetch reaches it, losing the data.
                // Defer until the fetch transaction settles the entry.
                self.metrics.wb_retries += 1;
                self.cal.schedule(
                    now + WRITEBACK_RETRY_DELAY,
                    Ev::Recv { node: home, key, acks: 0, kind: DeliveryKind::Final, src: owner },
                );
            }
            _ => {
                // Stale writeback: a fetch already transferred ownership;
                // the data was supplied by the FetchWb.
                self.send_dc(home, now, ProtoMsg::WritebackAck { block }, owner, VNet::Reply);
            }
        }
    }

    fn h_barrier_arrive(
        &mut self,
        now: Cycle,
        home: NodeId,
        barrier: u16,
        participants: u32,
        src: NodeId,
    ) {
        let idx = barrier as usize;
        if self.barriers.len() <= idx {
            self.barriers.resize_with(idx + 1, || None);
        }
        let st = self.barriers[idx]
            .get_or_insert_with(|| BarrierState { expected: participants, arrived: Vec::new() });
        st.arrived.push(src);
        if (st.arrived.len() as u32) < st.expected {
            return;
        }
        let arrived = self.barriers[idx].take().expect("barrier state present").arrived;
        self.metrics.barriers += 1;
        if self.cfg.multicast_barriers {
            self.release_barrier_multicast(now, home, barrier, arrived);
        } else {
            self.release_barrier_unicast(now, home, barrier, arrived);
        }
    }

    /// Per-participant unicast releases (the baseline used by the paper's
    /// systems).
    fn release_barrier_unicast(
        &mut self,
        now: Cycle,
        home: NodeId,
        barrier: u16,
        arrived: Vec<NodeId>,
    ) {
        let mut t = now;
        for n in arrived {
            t = self.nodes[home.idx()].dc.occupy(t, self.cfg.costs.dc_send);
            let key = self.msgs.push(ProtoMsg::BarrierRelease { barrier });
            if n == home {
                self.cal.schedule(
                    t,
                    Ev::Recv { node: n, key, acks: 0, kind: DeliveryKind::Final, src: home },
                );
            } else {
                let len = self.cfg.sizes.control;
                let spec = WormSpec::unicast(home, n, VNet::Reply, len, key);
                self.cal.schedule(t, Ev::Inject(spec));
            }
        }
    }

    /// Release with multidestination worms on the reply network: one worm
    /// per YX row group, so the barrier home sends O(rows) messages
    /// instead of O(participants) — the collective-communication variant
    /// from the group's barrier work.
    fn release_barrier_multicast(
        &mut self,
        now: Cycle,
        home: NodeId,
        barrier: u16,
        arrived: Vec<NodeId>,
    ) {
        let mesh = self.cfg.mesh.mesh;
        let remote: Vec<NodeId> = arrived.iter().copied().filter(|&n| n != home).collect();
        let mut t = now;
        if arrived.len() > remote.len() {
            // The home itself participates: local release.
            let key = self.msgs.push(ProtoMsg::BarrierRelease { barrier });
            t = self.nodes[home.idx()].dc.occupy(t, self.cfg.costs.dc_send);
            self.cal.schedule(
                t,
                Ev::Recv { node: home, key, acks: 0, kind: DeliveryKind::Final, src: home },
            );
        }
        for g in crate::schemes::grouping::row_groups(&mesh, home, &remote) {
            let key = self.msgs.push(ProtoMsg::BarrierRelease { barrier });
            let msg = ProtoMsg::BarrierRelease { barrier };
            let len = self.cfg.sizes.multicast_len(&msg, g.members.len());
            t = self.nodes[home.idx()].dc.occupy(t, self.cfg.costs.dc_send);
            let spec = WormSpec {
                src: home,
                vnet: VNet::Reply,
                kind: if g.members.len() == 1 { WormKind::Unicast } else { WormKind::Multicast },
                dests: g.members.into(),
                len_flits: len,
                payload: key,
                reserve_iack: false,
                txn: TxnId(0),
                initial_acks: 0,
                gather_deposit: false,
                deliver: None,
            };
            self.cal.schedule(t, Ev::Inject(spec));
        }
    }

    fn h_lock_req(&mut self, now: Cycle, home: NodeId, lock: u16, requester: NodeId) {
        let idx = lock as usize;
        if self.locks.len() <= idx {
            self.locks.resize_with(idx + 1, || None);
        }
        let st = self.locks[idx].get_or_insert_with(LockState::default);
        if st.holder.is_none() {
            st.holder = Some(requester);
            self.send_dc(home, now, ProtoMsg::LockGrant { lock }, requester, VNet::Reply);
        } else {
            st.queue.push_back(requester);
        }
    }

    fn h_lock_release(&mut self, now: Cycle, home: NodeId, lock: u16) {
        let st = self
            .locks
            .get_mut(lock as usize)
            .and_then(|s| s.as_mut())
            .expect("release of unknown lock");
        st.holder = None;
        if let Some(next) = st.queue.pop_front() {
            st.holder = Some(next);
            self.send_dc(home, now, ProtoMsg::LockGrant { lock }, next, VNet::Reply);
        }
    }

    // ------------------------------------------------------------------
    // Cache install / processor resume helpers.
    // ------------------------------------------------------------------

    /// Install a line, sending a writeback when a dirty victim falls out.
    fn install_line(&mut self, now: Cycle, node: NodeId, block: BlockId, state: LineState) {
        match self.nodes[node.idx()].cache.insert(block, state) {
            Evicted::None | Evicted::Clean(_) => {}
            Evicted::Dirty(victim) => {
                self.metrics.writebacks += 1;
                self.nodes[node.idx()].wb.insert(victim);
                let home = self.geom.home_of(victim);
                self.send_cc(
                    node,
                    now,
                    ProtoMsg::Writeback { block: victim, owner: node },
                    home,
                    VNet::Req,
                );
            }
        }
    }

    /// Put `node`'s processor into a stall, recording the trace event.
    fn stall(&mut self, node: NodeId, kind: StallKind, since: Cycle) {
        self.nodes[node.idx()].proc = ProcState::Stalled { kind, since };
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            since,
            TraceKind::StallEnter { node: node.idx() as u32, what: kind.label() }
        );
    }

    /// Resume a processor stalled on a memory operation.
    fn resume_mem(&mut self, now: Cycle, node: NodeId, expect: StallKind) {
        let ProcState::Stalled { kind, since } = self.nodes[node.idx()].proc else {
            self.invariant_failed(None, format!("{node} got a completion while not stalled"));
            return;
        };
        invariant!(
            return; self, None, kind == expect,
            "{node} completion for {expect:?} does not match its stall {kind:?}"
        );
        let stall = now - since;
        self.metrics.stall_cycles += stall;
        match kind {
            StallKind::Read(_) => self.metrics.read_latency.record(stall as f64),
            StallKind::Write(_) => self.metrics.write_latency.record(stall as f64),
            _ => {}
        }
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            now,
            TraceKind::StallExit { node: node.idx() as u32, what: kind.label(), stalled: stall }
        );
        self.nodes[node.idx()].proc = ProcState::BusyUntil(now + self.cfg.costs.cache_access);
    }

    /// Resume a processor stalled on a synchronization operation.
    fn resume_sync(&mut self, now: Cycle, node: NodeId, expect: StallKind) {
        let ProcState::Stalled { kind, since } = self.nodes[node.idx()].proc else {
            self.invariant_failed(None, format!("{node} got a sync completion while not stalled"));
            return;
        };
        invariant!(
            return; self, None, kind == expect,
            "{node} sync completion for {expect:?} does not match its stall {kind:?}"
        );
        let stall = now - since;
        self.metrics.sync_stall_cycles += stall;
        trace_event!(
            self.net.recorder_mut(),
            TraceClass::Txn,
            now,
            TraceKind::StallExit { node: node.idx() as u32, what: kind.label(), stalled: stall }
        );
        self.nodes[node.idx()].proc = ProcState::Idle;
    }
}

mod snap_impls {
    use super::*;

    impl Snap for MemOp {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                MemOp::Compute(c) => {
                    w.put_u8(0);
                    w.put_u64(*c);
                }
                MemOp::Read(a) => {
                    w.put_u8(1);
                    a.save(w);
                }
                MemOp::Write(a) => {
                    w.put_u8(2);
                    a.save(w);
                }
                MemOp::Barrier { id, participants } => {
                    w.put_u8(3);
                    w.put_u16(*id);
                    w.put_u32(*participants);
                }
                MemOp::Lock(l) => {
                    w.put_u8(4);
                    w.put_u16(*l);
                }
                MemOp::Unlock(l) => {
                    w.put_u8(5);
                    w.put_u16(*l);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => MemOp::Compute(r.get_u64()?),
                1 => MemOp::Read(Snap::load(r)?),
                2 => MemOp::Write(Snap::load(r)?),
                3 => MemOp::Barrier { id: r.get_u16()?, participants: r.get_u32()? },
                4 => MemOp::Lock(r.get_u16()?),
                5 => MemOp::Unlock(r.get_u16()?),
                t => return Err(SnapError::Corrupt(format!("MemOp tag {t}"))),
            })
        }
    }

    impl Snap for StallKind {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                StallKind::Read(b) => {
                    w.put_u8(0);
                    b.save(w);
                }
                StallKind::Write(b) => {
                    w.put_u8(1);
                    b.save(w);
                }
                StallKind::Barrier(id) => {
                    w.put_u8(2);
                    w.put_u16(*id);
                }
                StallKind::Lock(id) => {
                    w.put_u8(3);
                    w.put_u16(*id);
                }
                StallKind::Deferred(op) => {
                    w.put_u8(4);
                    op.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => StallKind::Read(Snap::load(r)?),
                1 => StallKind::Write(Snap::load(r)?),
                2 => StallKind::Barrier(r.get_u16()?),
                3 => StallKind::Lock(r.get_u16()?),
                4 => StallKind::Deferred(Snap::load(r)?),
                t => return Err(SnapError::Corrupt(format!("StallKind tag {t}"))),
            })
        }
    }

    impl Snap for ProcState {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                ProcState::Idle => w.put_u8(0),
                ProcState::BusyUntil(t) => {
                    w.put_u8(1);
                    w.put_u64(*t);
                }
                ProcState::Stalled { kind, since } => {
                    w.put_u8(2);
                    kind.save(w);
                    w.put_u64(*since);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => ProcState::Idle,
                1 => ProcState::BusyUntil(r.get_u64()?),
                2 => ProcState::Stalled { kind: Snap::load(r)?, since: r.get_u64()? },
                t => return Err(SnapError::Corrupt(format!("ProcState tag {t}"))),
            })
        }
    }

    impl Snap for NodeCtx {
        fn save(&self, w: &mut SnapWriter) {
            self.cache.save(w);
            self.wb.save(w);
            self.dc.save(w);
            self.cc.save(w);
            self.mem.save(w);
            self.proc.save(w);
            self.pending_writes.save(w);
            self.poisoned_fill.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                cache: Snap::load(r)?,
                wb: Snap::load(r)?,
                dc: Snap::load(r)?,
                cc: Snap::load(r)?,
                mem: Snap::load(r)?,
                proc: Snap::load(r)?,
                pending_writes: Snap::load(r)?,
                poisoned_fill: Snap::load(r)?,
            })
        }
    }

    impl Snap for TxnState {
        fn save(&self, w: &mut SnapWriter) {
            self.block.save(w);
            self.home.save(w);
            self.writer.save(w);
            w.put_u32(self.needed);
            w.put_u32(self.got);
            self.plan.save(w);
            w.put_bool(self.with_data);
            w.put_u64(self.started);
            w.put_u32(self.home_msgs);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                block: Snap::load(r)?,
                home: Snap::load(r)?,
                writer: Snap::load(r)?,
                needed: r.get_u32()?,
                got: r.get_u32()?,
                plan: Snap::load(r)?,
                with_data: r.get_bool()?,
                started: r.get_u64()?,
                home_msgs: r.get_u32()?,
            })
        }
    }

    impl Snap for BarrierState {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u32(self.expected);
            self.arrived.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self { expected: r.get_u32()?, arrived: Snap::load(r)? })
        }
    }

    impl Snap for LockState {
        fn save(&self, w: &mut SnapWriter) {
            self.holder.save(w);
            self.queue.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self { holder: Snap::load(r)?, queue: Snap::load(r)? })
        }
    }

    impl Snap for TxnSlab {
        fn save(&self, w: &mut SnapWriter) {
            self.slots.save(w);
            self.ids.save(w);
            self.free.save(w);
            w.put_u64(self.seq);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let slots: Vec<Option<TxnState>> = Snap::load(r)?;
            let ids: Vec<u64> = Snap::load(r)?;
            let free: Vec<u32> = Snap::load(r)?;
            let seq = r.get_u64()?;
            if ids.len() != slots.len() {
                return Err(SnapError::Corrupt(format!(
                    "txn slab: {} ids for {} slots",
                    ids.len(),
                    slots.len()
                )));
            }
            for (slot, (s, &id)) in slots.iter().zip(&ids).enumerate() {
                if s.is_some() != (id != 0) {
                    return Err(SnapError::Corrupt(format!(
                        "txn slab: slot {slot} occupancy disagrees with its id"
                    )));
                }
                if id != 0 && (id & ((1 << TXN_SLOT_BITS) - 1)) as usize != slot {
                    return Err(SnapError::Corrupt(format!(
                        "txn slab: id {id:#x} stored in slot {slot}"
                    )));
                }
            }
            let mut vacant_seen = vec![false; slots.len()];
            for &f in &free {
                let f = f as usize;
                if f >= slots.len()
                    || slots[f].is_some()
                    || std::mem::replace(&mut vacant_seen[f], true)
                {
                    return Err(SnapError::Corrupt(format!("txn slab: bad free-list entry {f}")));
                }
            }
            let live = slots.iter().filter(|s| s.is_some()).count();
            if free.len() + live != slots.len() {
                return Err(SnapError::Corrupt(format!(
                    "txn slab: {} free + {live} live != {} slots",
                    free.len(),
                    slots.len()
                )));
            }
            Ok(Self { slots, ids, free, seq, live })
        }
    }

    impl Snap for Ev {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Ev::Recv { node, key, acks, kind, src } => {
                    w.put_u8(0);
                    node.save(w);
                    w.put_u64(*key);
                    w.put_u32(*acks);
                    kind.save(w);
                    src.save(w);
                }
                Ev::Handle { node, key, acks, kind, src } => {
                    w.put_u8(1);
                    node.save(w);
                    w.put_u64(*key);
                    w.put_u32(*acks);
                    kind.save(w);
                    src.save(w);
                }
                Ev::Inject(spec) => {
                    w.put_u8(2);
                    spec.save(w);
                }
                Ev::PostIack { node, txn } => {
                    w.put_u8(3);
                    node.save(w);
                    txn.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => Ev::Recv {
                    node: Snap::load(r)?,
                    key: r.get_u64()?,
                    acks: r.get_u32()?,
                    kind: Snap::load(r)?,
                    src: Snap::load(r)?,
                },
                1 => Ev::Handle {
                    node: Snap::load(r)?,
                    key: r.get_u64()?,
                    acks: r.get_u32()?,
                    kind: Snap::load(r)?,
                    src: Snap::load(r)?,
                },
                2 => Ev::Inject(Snap::load(r)?),
                3 => Ev::PostIack { node: Snap::load(r)?, txn: Snap::load(r)? },
                t => return Err(SnapError::Corrupt(format!("Ev tag {t}"))),
            })
        }
    }
}
