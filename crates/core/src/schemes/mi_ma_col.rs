//! MI-MA(col): column i-reserve worms plus per-group i-gather worms.
//!
//! The request phase matches MI-UA(col) but every worm reserves i-ack
//! buffer entries along its path. In the ack phase each group's farthest
//! sharer initiates an i-gather that retraces the group toward the home
//! row collecting posted acks, then rides the YX reply network to the
//! home. The home receives one combined acknowledgement per group instead
//! of `d` unicasts.

use super::grouping::column_groups;
use super::{group_gather_dests, InvalidationScheme, SchemeKind};
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Multidestination Invalidation, Multidestination (gathered)
/// Acknowledgment — column grouping, one gather per group.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiMaCol;

impl InvalidationScheme for MiMaCol {
    fn name(&self) -> &'static str {
        SchemeKind::MiMaCol.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiMaCol
    }

    fn compatible_with(&self, _routing: BaseRouting) -> bool {
        true
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let groups = column_groups(mesh, home, sharers);
        let mut plan = InvalPlan { needed: sharers.len() as u32, ..Default::default() };
        for g in &groups {
            plan.request_worms.push(PlannedWorm::multicast(g.members.clone(), true));
            for &m in &g.members[..g.members.len() - 1] {
                plan.actions.push((m, AckAction::Post));
            }
            let gather = PlannedWorm::gather(group_gather_dests(g, home), 1, false);
            plan.actions.push((g.farthest(), AckAction::InitGather(gather)));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    #[test]
    fn gathers_per_group_and_posts_in_between() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(2, 4);
        let sharers =
            vec![mesh.node_at(5, 1), mesh.node_at(5, 3), mesh.node_at(5, 6), mesh.node_at(0, 4)];
        let plan = MiMaCol.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        assert!(plan.request_worms.iter().all(|w| w.reserve_iack));
        let gathers: Vec<_> = plan
            .actions
            .iter()
            .filter_map(|(n, a)| match a {
                AckAction::InitGather(w) => Some((*n, w)),
                _ => None,
            })
            .collect();
        // One gather per group (3 groups here).
        assert_eq!(gathers.len(), 3);
        // Every gather ends at home and is YX-conformant from its
        // initiator.
        for (init, w) in &gathers {
            assert_eq!(*w.dests.last().unwrap(), home);
            assert_eq!(w.initial_acks, 1);
            assert!(!w.gather_deposit);
            assert!(is_conformant(PathRule::YX, &mesh, *init, &w.dests), "{init} {:?}", w.dests);
        }
        // Home receives 3 messages instead of 4 unicast acks; total home
        // message involvement is 3 sends + 3 receives < 2d = 8.
        assert_eq!(plan.home_sends(), 3);
    }

    #[test]
    fn mid_group_members_post() {
        let mesh = Mesh2D::square(16);
        let home = mesh.node_at(0, 0);
        let sharers: Vec<NodeId> = (2..7).map(|y| mesh.node_at(5, y)).collect();
        let plan = MiMaCol.plan(&mesh, home, &sharers);
        let posts = plan.actions.iter().filter(|(_, a)| *a == AckAction::Post).count();
        assert_eq!(posts, 4);
        // Farthest sharer (5, 6) initiates.
        let (init, _) =
            plan.actions.iter().find(|(_, a)| matches!(a, AckAction::InitGather(_))).unwrap();
        assert_eq!(*init, mesh.node_at(5, 6));
    }

    #[test]
    fn singleton_group_gather_goes_straight_home() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(2, 4);
        let sharers = vec![mesh.node_at(6, 2)];
        let plan = MiMaCol.plan(&mesh, home, &sharers);
        let AckAction::InitGather(w) = &plan.actions[0].1 else { panic!("expected gather") };
        assert_eq!(w.dests, vec![home]);
        assert_eq!(w.initial_acks, 1);
    }
}
