//! MI-MA(tree): hierarchical request distribution.
//!
//! The home sends at most two *relay* worms along its own row (pure-X
//! multidestination paths) to one delegate per sharer column; each
//! delegate injects the column invalidation worms for its column (pure-Y
//! paths). The home's request-phase occupancy drops to O(1) sends
//! regardless of how many columns hold sharers. Acknowledgements use
//! per-group i-gathers as in MI-MA(col).

use super::grouping::{column_groups, Group};
use super::{group_gather_dests, InvalidationScheme, SchemeKind};
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Multidestination Invalidation via row-relay tree, Multidestination
/// Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiMaTree;

impl InvalidationScheme for MiMaTree {
    fn name(&self) -> &'static str {
        SchemeKind::MiMaTree.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiMaTree
    }

    fn compatible_with(&self, _routing: BaseRouting) -> bool {
        // Pure-row and pure-column segments are legal under both base
        // routings (a westward relay worm is a west-run prefix under
        // west-first).
        true
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let h = mesh.coord(home);
        let (hx, hy) = (h.x as usize, h.y as usize);
        let groups = column_groups(mesh, home, sharers);
        let mut plan = InvalPlan { needed: sharers.len() as u32, ..Default::default() };

        // Partition groups by column side relative to home.
        let mut west_cols: Vec<usize> = Vec::new();
        let mut east_cols: Vec<usize> = Vec::new();
        let mut by_col: std::collections::BTreeMap<usize, Vec<&Group>> = Default::default();
        for g in &groups {
            by_col.entry(g.col).or_default().push(g);
        }
        for &c in by_col.keys() {
            if c < hx {
                west_cols.push(c);
            } else if c > hx {
                east_cols.push(c);
            }
        }
        west_cols.sort_unstable_by(|a, b| b.cmp(a)); // nearest-first going west
        east_cols.sort_unstable(); // nearest-first going east

        // Home-column groups: home injects their column worms directly.
        if let Some(gs) = by_col.get(&hx) {
            for g in gs {
                plan.request_worms.push(column_worm(mesh, g, home));
            }
        }

        // Relay worms to delegates at (col, hy).
        for cols in [west_cols, east_cols] {
            if cols.is_empty() {
                continue;
            }
            let delegates: Vec<NodeId> = cols.iter().map(|&c| mesh.node_at(c, hy)).collect();
            let mut relay = PlannedWorm::multicast(delegates, false);
            relay.relay = true;
            plan.request_worms.push(relay);
            for &c in &cols {
                let delegate = mesh.node_at(c, hy);
                let worms: Vec<PlannedWorm> =
                    by_col[&c].iter().map(|g| column_worm(mesh, g, delegate)).collect();
                plan.relays
                    .push((delegate, worms.into_iter().filter(|w| !w.dests.is_empty()).collect()));
            }
        }

        // Ack phase: per-group gathers, as MI-MA(col).
        for g in &groups {
            for &m in &g.members[..g.members.len() - 1] {
                plan.actions.push((m, AckAction::Post));
            }
            let gather = PlannedWorm::gather(group_gather_dests(g, home), 1, false);
            plan.actions.push((g.farthest(), AckAction::InitGather(gather)));
        }
        plan
    }
}

/// The column worm a source at `src` injects for group `g`, excluding
/// `src` itself from the destination list (a delegate that is also a
/// sharer invalidates locally when it processes the relay).
fn column_worm(mesh: &Mesh2D, g: &Group, src: NodeId) -> PlannedWorm {
    let _ = mesh;
    let dests: Vec<NodeId> = g.members.iter().copied().filter(|&m| m != src).collect();
    PlannedWorm::multicast(dests, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    #[test]
    fn home_sends_at_most_two_relays_plus_own_column() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 4);
        let sharers: Vec<NodeId> = [(0, 1), (1, 2), (5, 1), (6, 2), (6, 6), (3, 7)]
            .iter()
            .map(|&(x, y)| mesh.node_at(x, y))
            .collect();
        let plan = MiMaTree.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        // 1 west relay + 1 east relay + 1 home-column worm.
        assert_eq!(plan.request_worms.len(), 3);
        assert_eq!(plan.request_worms.iter().filter(|w| w.relay).count(), 2);
        // Relay worms are pure-row, XY-conformant.
        for w in plan.request_worms.iter().filter(|w| w.relay) {
            assert!(is_conformant(PathRule::XY, &mesh, home, &w.dests));
            assert!(w.dests.iter().all(|d| mesh.coord(*d).y == 4));
        }
        // Delegates cover columns 0, 1, 5, 6.
        assert_eq!(plan.relays.len(), 4);
        for (delegate, worms) in &plan.relays {
            for w in worms {
                assert!(w.reserve_iack);
                assert!(
                    is_conformant(PathRule::XY, &mesh, *delegate, &w.dests),
                    "column worm from {delegate}: {:?}",
                    w.dests
                );
            }
        }
    }

    #[test]
    fn delegate_that_is_a_sharer_is_excluded_from_its_worm() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 4);
        // (6,4) is both delegate and sharer.
        let sharers = vec![mesh.node_at(6, 4), mesh.node_at(6, 1)];
        let plan = MiMaTree.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        let (delegate, worms) = &plan.relays[0];
        assert_eq!(*delegate, mesh.node_at(6, 4));
        assert_eq!(worms.len(), 1);
        assert_eq!(worms[0].dests, vec![mesh.node_at(6, 1)]);
        // The delegate-sharer still has an ack action.
        assert!(plan.action_for(mesh.node_at(6, 4)).is_some());
    }

    #[test]
    fn lone_home_row_sharer_gets_empty_relay_worm_list() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 4);
        let sharers = vec![mesh.node_at(6, 4)];
        let plan = MiMaTree.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        // The delegate IS the only sharer: relay delivers, no column worm.
        assert_eq!(plan.relays.len(), 1);
        assert!(plan.relays[0].1.is_empty());
        // Its gather goes straight home.
        let AckAction::InitGather(w) = plan.action_for(mesh.node_at(6, 4)).unwrap() else {
            panic!("expected gather")
        };
        assert_eq!(w.dests, vec![home]);
    }

    #[test]
    fn gathers_are_yx_conformant() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 4);
        let sharers: Vec<NodeId> =
            [(0, 1), (0, 3), (6, 6), (6, 7)].iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
        let plan = MiMaTree.plan(&mesh, home, &sharers);
        for (init, a) in &plan.actions {
            if let AckAction::InitGather(w) = a {
                assert!(is_conformant(PathRule::YX, &mesh, *init, &w.dests));
                assert_eq!(*w.dests.last().unwrap(), home);
            }
        }
    }
}
