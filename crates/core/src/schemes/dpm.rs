//! DPM: dynamic partition merging (after "Efficient On-Chip Multicast
//! Routing based on Dynamic Partition Merging", adapted to the paper's
//! west-first serpentine worms).
//!
//! The static schemes pick their partition granularity up front: one worm
//! per column group (MI-MA(col)) or one serpentine over everything
//! (MI-MA(wf)). Neither is optimal in general — many small worms pay the
//! home's serial `dc_send` per worm, while one giant serpentine pays a
//! long snaking path. DPM interpolates: it starts from the per-column
//! partitions of [`column_groups`] and greedily merges *adjacent*
//! partitions whenever the merged serpentine realization lowers the plan's
//! closed-form completion estimate (the same contention-free law
//! `crates/analytic` uses, cross-validated in the tests below). Merging
//! never increases the worm count, so `home_sends <= d` is preserved, and
//! the greedy loop only accepts strictly improving merges, so the final
//! estimate is never worse than the unmerged starting point.
//!
//! The ack phase is untouched: two-phase gathered acknowledgements over
//! the original column groups, exactly as in MI-MA(wf) (a gather cannot
//! legally end at an interior home under west-first, and partition
//! merging only reshapes the *request* worms).
//!
//! Costs are estimated, not measured: the law prices each worm's solo
//! flight and the home's `dc_send` serialization, ignoring contention.
//! The adaptive variant ([`MiMaAdaptive`]) layers a measured per-link
//! penalty on top via the [`HopPenalty`] hook.
//!
//! [`MiMaAdaptive`]: super::MiMaAdaptive
//! [`column_groups`]: super::grouping::column_groups

use super::grouping::{column_groups, serpentine, SerpentineWorm};
use super::two_phase_acks::two_phase_acks;
use super::{InvalidationScheme, SchemeKind};
use crate::plan::{InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::{expand_path, BaseRouting, PathRule};
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_mesh::worm::WormKind;

/// Router pipeline delay, cycles (mirrors `NetParams::router_delay`).
pub(crate) const ROUTER_DELAY: u64 = 4;
/// Header strip delay at an intermediate destination
/// (`NetParams::strip_delay`).
pub(crate) const STRIP_DELAY: u64 = 1;
/// Home DC send occupancy per injected worm (`CostModel::dc_send`).
pub(crate) const DC_SEND: u64 = 4;
/// Control-message length in flits (`MsgSizes::control`).
pub(crate) const CONTROL_FLITS: u64 = 8;
/// Extra header flits per 4 extra destinations
/// (`MsgSizes::per_extra_dest_x4`).
pub(crate) const PER_EXTRA_DEST_X4: u64 = 1;

/// Extra cost (cycles) a congestion-aware caller charges for one hop
/// `a -> b`; the pure DPM scheme passes `None` everywhere.
pub(crate) type HopPenalty<'a> = &'a dyn Fn(NodeId, NodeId) -> u64;

/// Closed-form completion estimate of one serpentine worm injected at the
/// home: head latency over the expanded west-first path, strip delays at
/// every visited destination (waypoints included), plus the tail drain.
/// With no penalty this equals the last entry of
/// `analytic::solo_flight_latencies` for the same worm, cycle-for-cycle.
pub(crate) fn worm_cost(
    mesh: &Mesh2D,
    home: NodeId,
    w: &SerpentineWorm,
    penalty: Option<HopPenalty<'_>>,
) -> u64 {
    let path = expand_path(PathRule::WestFirst, mesh, home, &w.dests)
        .expect("serpentine worms are west-first conformant");
    let hops = (path.len() - 1) as u64;
    let strips = (w.dests.len() as u64).saturating_sub(1);
    let delivering = w.deliver.iter().filter(|&&d| d).count() as u64;
    let len_flits = CONTROL_FLITS + delivering.saturating_sub(1).div_ceil(4) * PER_EXTRA_DEST_X4;
    let mut cost = (hops + 1) * ROUTER_DELAY + strips * STRIP_DELAY + len_flits;
    if let Some(p) = penalty {
        for hop in path.windows(2) {
            cost += p(hop[0], hop[1]);
        }
    }
    cost
}

/// Realize one partition (a sharer subset) as serpentine worms with their
/// estimated costs.
fn realize(
    mesh: &Mesh2D,
    home: NodeId,
    members: &[NodeId],
    penalty: Option<HopPenalty<'_>>,
) -> Vec<(SerpentineWorm, u64)> {
    serpentine(mesh, home, members)
        .into_iter()
        .map(|w| {
            let c = worm_cost(mesh, home, &w, penalty);
            (w, c)
        })
        .collect()
}

/// Plan completion estimate for worm costs in injection order: worm `j`
/// leaves the home DC at `(j+1) * dc_send` (serial send occupancy) and
/// completes its flight `cost_j` cycles later; the plan completes when the
/// slowest worm does.
fn makespan(costs: &[u64]) -> u64 {
    costs.iter().enumerate().map(|(j, &c)| (j as u64 + 1) * DC_SEND + c).max().unwrap_or(0)
}

/// One partition during merging: its members plus the cached realization.
struct Partition {
    members: Vec<NodeId>,
    realized: Vec<(SerpentineWorm, u64)>,
}

/// Greedy adjacent partition merging. Starts from the [`column_groups`]
/// partitions (in their deterministic emission order) and repeatedly
/// applies the adjacent merge with the largest strict improvement in
/// [`makespan`] (ties broken toward the lowest index) until no merge
/// improves. Deterministic: pure function of the mesh geometry, the
/// sharer set, and the (optional) penalty.
fn merge_partitions(
    mesh: &Mesh2D,
    home: NodeId,
    sharers: &[NodeId],
    penalty: Option<HopPenalty<'_>>,
) -> Vec<Partition> {
    let mut parts: Vec<Partition> = column_groups(mesh, home, sharers)
        .into_iter()
        .map(|g| Partition {
            realized: realize(mesh, home, &g.members, penalty),
            members: g.members,
        })
        .collect();
    loop {
        let flat_cost = |ps: &[Partition]| -> u64 {
            let costs: Vec<u64> =
                ps.iter().flat_map(|p| p.realized.iter().map(|&(_, c)| c)).collect();
            makespan(&costs)
        };
        let current = flat_cost(&parts);
        let mut best: Option<(usize, u64, Partition)> = None;
        for i in 0..parts.len().saturating_sub(1) {
            let mut members = parts[i].members.clone();
            members.extend_from_slice(&parts[i + 1].members);
            let merged = Partition { realized: realize(mesh, home, &members, penalty), members };
            // Evaluate the whole plan with i and i+1 replaced by the merge.
            let costs: Vec<u64> = parts[..i]
                .iter()
                .chain(std::iter::once(&merged))
                .chain(parts[i + 2..].iter())
                .flat_map(|p| p.realized.iter().map(|&(_, c)| c))
                .collect();
            let candidate = makespan(&costs);
            if candidate < current && best.as_ref().is_none_or(|&(_, b, _)| candidate < b) {
                best = Some((i, candidate, merged));
            }
        }
        match best {
            Some((i, _, merged)) => {
                parts[i] = merged;
                parts.remove(i + 1);
            }
            None => return parts,
        }
    }
}

/// The merged partitions DPM would use for `(home, sharers)`, as ordered
/// member lists. Exposed for the property tests: feeding these (or the raw
/// [`column_groups`] member lists) to [`partition_plan_cost`] reproduces
/// the costs the greedy loop compared.
pub fn dpm_partitions(mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> Vec<Vec<NodeId>> {
    merge_partitions(mesh, home, sharers, None).into_iter().map(|p| p.members).collect()
}

/// Closed-form completion estimate ([`makespan`] of solo-flight costs) of
/// realizing `partitions` as serpentine worms in order.
pub fn partition_plan_cost(mesh: &Mesh2D, home: NodeId, partitions: &[Vec<NodeId>]) -> u64 {
    let costs: Vec<u64> =
        partitions.iter().flat_map(|m| realize(mesh, home, m, None)).map(|(_, c)| c).collect();
    makespan(&costs)
}

/// Shared plan assembly for DPM and the adaptive variant: request worms
/// from merged partitions (optionally re-ordered by the caller), two-phase
/// gathered acks over the original column groups.
pub(crate) fn assemble_plan(
    mesh: &Mesh2D,
    home: NodeId,
    sharers: &[NodeId],
    penalty: Option<HopPenalty<'_>>,
    order_by_cost_desc: bool,
) -> InvalPlan {
    let parts = merge_partitions(mesh, home, sharers, penalty);
    let mut worms: Vec<(SerpentineWorm, u64)> =
        parts.into_iter().flat_map(|p| p.realized).collect();
    if order_by_cost_desc {
        // Longest-flight-first: the home's serial dc_send delays later
        // injections, so front-loading the slowest worm minimizes the
        // makespan. Stable sort keeps equal-cost worms in partition order
        // (determinism).
        worms.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    }
    let groups = column_groups(mesh, home, sharers);
    let acks = two_phase_acks(mesh, home, &groups);
    let unique: usize = groups.iter().map(|g| g.members.len()).sum();
    InvalPlan {
        request_worms: worms
            .into_iter()
            .map(|(w, _)| {
                let all_deliver = w.deliver.iter().all(|&d| d);
                PlannedWorm {
                    kind: WormKind::Multicast,
                    dests: w.dests,
                    deliver: if all_deliver { None } else { Some(w.deliver) },
                    // No i-reserve: serpentines visit gather initiators
                    // mid-path (see the MI-MA(wf) module docs).
                    reserve_iack: false,
                    gather_deposit: false,
                    initial_acks: 0,
                    relay: false,
                }
            })
            .collect(),
        actions: acks.actions,
        relays: vec![],
        triggers: acks.triggers,
        needed: unique as u32,
    }
}

/// Dynamic partition merging: greedy cost-driven merge of column
/// partitions into serpentine worms, two-phase gathered acks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dpm;

impl InvalidationScheme for Dpm {
    fn name(&self) -> &'static str {
        SchemeKind::Dpm.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Dpm
    }

    fn compatible_with(&self, routing: BaseRouting) -> bool {
        routing == BaseRouting::TurnModel
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        assemble_plan(mesh, home, sharers, None, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use wormdsm_mesh::routing::is_conformant;

    fn m8() -> Mesh2D {
        Mesh2D::square(8)
    }

    fn n(m: &Mesh2D, x: usize, y: usize) -> NodeId {
        m.node_at(x, y)
    }

    #[test]
    fn plan_is_valid_and_conformant() {
        let m = m8();
        let home = n(&m, 4, 4);
        let sharers: Vec<NodeId> = [(1, 2), (2, 6), (5, 1), (6, 5), (7, 7), (0, 3)]
            .iter()
            .map(|&(x, y)| n(&m, x, y))
            .collect();
        let plan = Dpm.plan(&m, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        for w in &plan.request_worms {
            assert!(is_conformant(PathRule::WestFirst, &m, home, &w.dests), "{:?}", w.dests);
        }
    }

    #[test]
    fn merging_never_worse_than_column_partitions() {
        let m = m8();
        let home = n(&m, 3, 3);
        for sharers in [
            vec![n(&m, 0, 0), n(&m, 1, 1), n(&m, 2, 2), n(&m, 5, 5), n(&m, 6, 6)],
            vec![n(&m, 7, 0), n(&m, 7, 7), n(&m, 0, 7)],
            vec![n(&m, 4, 3)],
            (0..8).map(|x| n(&m, x, 1)).collect::<Vec<_>>(),
        ] {
            let initial: Vec<Vec<NodeId>> =
                column_groups(&m, home, &sharers).into_iter().map(|g| g.members).collect();
            let merged = dpm_partitions(&m, home, &sharers);
            assert!(
                partition_plan_cost(&m, home, &merged) <= partition_plan_cost(&m, home, &initial),
                "merge made {sharers:?} worse"
            );
            assert!(merged.len() <= initial.len(), "merging never adds partitions");
        }
    }

    #[test]
    fn wide_row_pattern_merges_below_column_worm_count() {
        // One sharer per column along a row: MI-MA(col) would inject 8
        // singleton worms; DPM merges neighbors into a few serpentines.
        let m = m8();
        let home = n(&m, 3, 3);
        let sharers: Vec<NodeId> = (0..8).map(|x| n(&m, x, 1)).collect();
        let plan = Dpm.plan(&m, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        let groups = column_groups(&m, home, &sharers).len();
        assert!(
            plan.request_worms.len() < groups,
            "expected merging: {} worms vs {} column groups",
            plan.request_worms.len(),
            groups
        );
    }

    #[test]
    fn home_sends_never_exceed_sharer_count() {
        let m = m8();
        let home = n(&m, 0, 0);
        let sharers: Vec<NodeId> =
            [(1, 1), (3, 5), (5, 2), (7, 6)].iter().map(|&(x, y)| n(&m, x, y)).collect();
        let plan = Dpm.plan(&m, home, &sharers);
        assert!(plan.home_sends() <= sharers.len());
    }

    /// The scheme's private cost law must price a worm exactly as the
    /// analytic model does — DPM's merge decisions and the analytic
    /// replay's latency estimates come from one law.
    #[test]
    fn worm_cost_matches_analytic_solo_flight() {
        use wormdsm_analytic::model::{solo_flight_latencies, NetParams};
        let m = m8();
        let p = NetParams::default();
        for (home, sharers) in [
            (n(&m, 4, 4), vec![n(&m, 1, 2), n(&m, 3, 5), n(&m, 6, 1), n(&m, 6, 6)]),
            (n(&m, 0, 7), vec![n(&m, 2, 0), n(&m, 2, 7), n(&m, 5, 3)]),
            (n(&m, 7, 0), vec![n(&m, 0, 0)]),
        ] {
            for w in serpentine(&m, home, &sharers) {
                let delivering = w.deliver.iter().filter(|&&d| d).count() as u64;
                let len =
                    CONTROL_FLITS + delivering.saturating_sub(1).div_ceil(4) * PER_EXTRA_DEST_X4;
                let got = worm_cost(&m, home, &w, None);
                let want = *solo_flight_latencies(&p, &m, PathRule::WestFirst, home, &w.dests, len)
                    .last()
                    .unwrap();
                assert_eq!(got, want, "cost law drifted for {:?}", w.dests);
            }
        }
    }
}
