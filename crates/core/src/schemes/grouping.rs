//! Sharer-set grouping geometry.
//!
//! The directory's presence bits are organized column-wise (paper section
//! 4); these helpers slice a sharer set into base-routing-conformant worm
//! destination sequences:
//!
//! * [`column_groups`] — per-column, per-side monotone groups for e-cube
//!   XY request worms (a column whose sharers straddle the home row needs
//!   one group per side, since an XY worm's column segment is monotone);
//! * [`serpentine`] — the single west-first worm order: west run along the
//!   home row, then an eastward serpentine sweeping each sharer column,
//!   with non-delivering *waypoints* pinning the legal corner turns.

use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// One monotone column group of sharers, ordered nearest-to-farthest from
/// the home row (= the order an XY invalidation worm visits them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Mesh column of every member.
    pub col: usize,
    /// Members, nearest to the home row first.
    pub members: Vec<NodeId>,
}

impl Group {
    /// The member nearest the home row (first visited by the request
    /// worm, last collected by the gather).
    pub fn nearest(&self) -> NodeId {
        self.members[0]
    }

    /// The member farthest from the home row (the gather initiator).
    pub fn farthest(&self) -> NodeId {
        *self.members.last().expect("groups are non-empty")
    }
}

/// Partition `sharers` into monotone column groups relative to `home`.
///
/// Within a column, sharers strictly north of the home row form one group
/// (visited northward) and sharers strictly south another (southward); a
/// sharer *on* the home row is prepended to whichever side exists (north
/// preferred) or forms a singleton group. Groups are emitted in ascending
/// column order, north side before south.
#[allow(clippy::type_complexity)]
pub fn column_groups(mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> Vec<Group> {
    let hy = mesh.coord(home).y;
    // Defensive dedup: a duplicate sharer would otherwise overwrite the
    // on-row slot (one invalidation silently lost in release builds) or
    // produce a worm that delivers to the same node twice. The sort only
    // orders the scratch copy; group ordering is re-derived below.
    let sharers = dedup_nodes(sharers);
    let mut per_col: std::collections::BTreeMap<usize, (Vec<NodeId>, Vec<NodeId>, Option<NodeId>)> =
        std::collections::BTreeMap::new();
    for &s in &sharers {
        let c = mesh.coord(s);
        let slot = per_col.entry(c.x as usize).or_default();
        match c.y.cmp(&hy) {
            std::cmp::Ordering::Less => slot.0.push(s),
            std::cmp::Ordering::Greater => slot.1.push(s),
            std::cmp::Ordering::Equal => {
                debug_assert!(slot.2.is_none(), "duplicate sharer");
                slot.2 = Some(s)
            }
        }
    }
    let mut out = Vec::new();
    for (col, (mut north, mut south, on_row)) in per_col {
        // North: visited moving north = decreasing y = nearest (largest y)
        // first.
        north.sort_by_key(|n| std::cmp::Reverse(mesh.coord(*n).y));
        south.sort_by_key(|n| mesh.coord(*n).y);
        if let Some(r) = on_row {
            if !north.is_empty() {
                north.insert(0, r);
            } else if !south.is_empty() {
                south.insert(0, r);
            } else {
                out.push(Group { col, members: vec![r] });
                continue;
            }
        }
        if !north.is_empty() {
            out.push(Group { col, members: north });
        }
        if !south.is_empty() {
            out.push(Group { col, members: south });
        }
    }
    out
}

/// Partition `dests` into monotone *row* groups relative to `src` — the
/// YX dual of [`column_groups`], used for multidestination worms on the
/// reply network (e.g. multicast barrier releases): the worm travels down
/// `src`'s column to the row, then monotonically across it.
#[allow(clippy::type_complexity)]
pub fn row_groups(mesh: &Mesh2D, src: NodeId, dests: &[NodeId]) -> Vec<Group> {
    let hx = mesh.coord(src).x;
    // Same defensive dedup as [`column_groups`] (duplicate destinations
    // would double-deliver or clobber the on-column slot).
    let dests = dedup_nodes(dests);
    let mut per_row: std::collections::BTreeMap<usize, (Vec<NodeId>, Vec<NodeId>, Option<NodeId>)> =
        std::collections::BTreeMap::new();
    for &d in &dests {
        let c = mesh.coord(d);
        let slot = per_row.entry(c.y as usize).or_default();
        match c.x.cmp(&hx) {
            std::cmp::Ordering::Less => slot.0.push(d),
            std::cmp::Ordering::Greater => slot.1.push(d),
            std::cmp::Ordering::Equal => {
                debug_assert!(slot.2.is_none(), "duplicate destination");
                slot.2 = Some(d)
            }
        }
    }
    let mut out = Vec::new();
    for (row, (mut west, mut east, on_col)) in per_row {
        west.sort_by_key(|n| std::cmp::Reverse(mesh.coord(*n).x));
        east.sort_by_key(|n| mesh.coord(*n).x);
        if let Some(r) = on_col {
            if !west.is_empty() {
                west.insert(0, r);
            } else if !east.is_empty() {
                east.insert(0, r);
            } else {
                out.push(Group { col: row, members: vec![r] });
                continue;
            }
        }
        if !west.is_empty() {
            out.push(Group { col: row, members: west });
        }
        if !east.is_empty() {
            out.push(Group { col: row, members: east });
        }
    }
    out
}

/// Sorted, duplicate-free copy of a node list. Grouping is order- and
/// multiplicity-insensitive, so collapsing duplicates up front makes the
/// release build safe against them too (the `debug_assert`s on the
/// on-row/on-column slots are unreachable once inputs are unique).
fn dedup_nodes(nodes: &[NodeId]) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// A serpentine worm order: destination list plus delivery mask
/// (`false` = routing waypoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerpentineWorm {
    /// Ordered destinations (sharers and waypoints).
    pub dests: Vec<NodeId>,
    /// Parallel delivery mask.
    pub deliver: Vec<bool>,
}

/// Build the west-first serpentine order covering `sharers` from `home`.
///
/// Returns one main worm and, when the westmost sharer column lies at or
/// west of the home column *and* its sharers straddle the home row, a
/// second small column worm for the straddled side (the west run enters
/// that column pinned to the home row, so only one vertical direction is
/// available there).
pub fn serpentine(mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> Vec<SerpentineWorm> {
    if sharers.is_empty() {
        return vec![];
    }
    let h = mesh.coord(home);
    let (hx, hy) = (h.x as usize, h.y as usize);
    let mut cols: std::collections::BTreeMap<usize, Vec<usize>> = std::collections::BTreeMap::new();
    for &s in sharers {
        let c = mesh.coord(s);
        cols.entry(c.x as usize).or_default().push(c.y as usize);
    }
    for ys in cols.values_mut() {
        ys.sort_unstable();
        ys.dedup();
    }

    let mut worms = Vec::new();
    let mut dests: Vec<NodeId> = Vec::new();
    let mut deliver: Vec<bool> = Vec::new();
    let mut y_cur = hy;
    // prev_dir: Some(true) = last sweep moved south, Some(false) = north.
    let mut prev_dir: Option<bool> = None;
    let mut first = true;

    for (&cx, ys) in &cols {
        let (top, bot) = (ys[0], *ys.last().expect("non-empty"));
        // Decide sweep order (true = ascending y / southward).
        let asc: bool;
        if y_cur <= top {
            asc = true;
        } else if y_cur >= bot {
            asc = false;
        } else if first && cx <= hx {
            // Straddle in the west-run column: the worm arrives pinned to
            // the home row; cover the north side in the main worm and emit
            // the south side as a separate column worm.
            let (north, south): (Vec<usize>, Vec<usize>) = ys.iter().partition(|&&y| y <= hy);
            // North side: visited moving north = descending y.
            let mut n = north;
            n.sort_unstable_by_key(|&y| std::cmp::Reverse(y));
            for y in n {
                dests.push(mesh.node_at(cx, y));
                deliver.push(true);
            }
            worms.push(SerpentineWorm {
                dests: south.iter().map(|&y| mesh.node_at(cx, y)).collect(),
                deliver: vec![true; south.len()],
            });
            y_cur = mesh.coord(*dests.last().expect("north side non-empty")).y as usize;
            prev_dir = Some(false);
            first = false;
            continue;
        } else {
            // Entry row strictly inside the span: pre-position via a
            // waypoint in the previous column so the sweep starts at an
            // extreme without an illegal reversal. The waypoint's vertical
            // approach must continue the previous sweep direction when the
            // waypoint column equals the previous sharer column.
            let go_south_first = prev_dir.unwrap_or(true);
            let wp_x = cx - 1; // exists: cx > previous column >= 0
            let y_ext = if go_south_first { bot } else { top };
            dests.push(mesh.node_at(wp_x, y_ext));
            deliver.push(false);
            asc = !go_south_first;
            let order: Vec<usize> =
                if asc { ys.clone() } else { ys.iter().rev().copied().collect() };
            for y in order {
                dests.push(mesh.node_at(cx, y));
                deliver.push(true);
            }
            y_cur = mesh.coord(*dests.last().expect("non-empty")).y as usize;
            prev_dir = Some(asc);
            first = false;
            continue;
        }
        let order: Vec<usize> = if asc { ys.clone() } else { ys.iter().rev().copied().collect() };
        let entered_westward = first && cx < hx;
        for y in order {
            dests.push(mesh.node_at(cx, y));
            deliver.push(true);
        }
        y_cur = mesh.coord(*dests.last().expect("non-empty")).y as usize;
        prev_dir = Some(asc);
        first = false;
        // U-turn guard: if the west run ended at the home row with no
        // vertical movement and eastward columns follow, a direct W->E
        // reversal is not turn-legal. Insert a one-hop vertical dogleg
        // waypoint so the turnaround is two legal 90-degree turns.
        if entered_westward && y_cur == hy && cols.len() > 1 {
            let (dog_y, dir_south) =
                if hy + 1 < mesh.height() { (hy + 1, true) } else { (hy - 1, false) };
            dests.push(mesh.node_at(cx, dog_y));
            deliver.push(false);
            y_cur = dog_y;
            prev_dir = Some(dir_south);
        }
    }

    if !dests.is_empty() {
        worms.insert(0, SerpentineWorm { dests, deliver });
    }
    worms.retain(|w| !w.dests.is_empty());
    worms
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    fn m8() -> Mesh2D {
        Mesh2D::square(8)
    }

    fn n(m: &Mesh2D, x: usize, y: usize) -> NodeId {
        m.node_at(x, y)
    }

    #[test]
    fn column_groups_split_by_home_row() {
        let m = m8();
        let home = n(&m, 2, 4);
        let sharers = [n(&m, 5, 1), n(&m, 5, 3), n(&m, 5, 6), n(&m, 1, 2)];
        let gs = column_groups(&m, home, &sharers);
        assert_eq!(gs.len(), 3);
        // Column 1 north.
        assert_eq!(gs[0].col, 1);
        assert_eq!(gs[0].members, vec![n(&m, 1, 2)]);
        // Column 5 north: nearest (y=3) first.
        assert_eq!(gs[1].col, 5);
        assert_eq!(gs[1].members, vec![n(&m, 5, 3), n(&m, 5, 1)]);
        assert_eq!(gs[1].nearest(), n(&m, 5, 3));
        assert_eq!(gs[1].farthest(), n(&m, 5, 1));
        // Column 5 south.
        assert_eq!(gs[2].members, vec![n(&m, 5, 6)]);
    }

    #[test]
    fn home_row_sharer_prepends_to_north() {
        let m = m8();
        let home = n(&m, 2, 4);
        let sharers = [n(&m, 5, 4), n(&m, 5, 2)];
        let gs = column_groups(&m, home, &sharers);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].members, vec![n(&m, 5, 4), n(&m, 5, 2)]);
    }

    #[test]
    fn home_row_sharer_alone_forms_group() {
        let m = m8();
        let home = n(&m, 2, 4);
        let gs = column_groups(&m, home, &[n(&m, 6, 4)]);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].members, vec![n(&m, 6, 4)]);
    }

    #[test]
    fn column_group_request_paths_are_xy_conformant() {
        let m = m8();
        let home = n(&m, 3, 3);
        let sharers: Vec<NodeId> = [(0, 0), (0, 7), (3, 1), (5, 3), (5, 5), (7, 2), (7, 4)]
            .iter()
            .map(|&(x, y)| n(&m, x, y))
            .collect();
        for g in column_groups(&m, home, &sharers) {
            assert!(
                is_conformant(PathRule::XY, &m, home, &g.members),
                "group {:?} not XY-conformant",
                g
            );
        }
    }

    #[test]
    fn column_group_gather_paths_are_yx_conformant() {
        let m = m8();
        let home = n(&m, 3, 3);
        let sharers: Vec<NodeId> =
            [(0, 0), (0, 7), (5, 3), (5, 5), (7, 2)].iter().map(|&(x, y)| n(&m, x, y)).collect();
        for g in column_groups(&m, home, &sharers) {
            // Gather: farthest -> ... -> nearest -> home.
            let mut dests: Vec<NodeId> = g.members.iter().rev().copied().collect();
            // First destination is the source; the gather path starts there.
            let src = dests.remove(0);
            dests.push(home);
            assert!(
                is_conformant(PathRule::YX, &m, src, &dests),
                "gather for {:?} not YX-conformant",
                g
            );
        }
    }

    #[test]
    fn row_groups_are_yx_conformant() {
        let m = m8();
        let src = n(&m, 3, 2);
        let dests: Vec<NodeId> = [(0, 5), (2, 5), (6, 5), (3, 0), (1, 2), (7, 7)]
            .iter()
            .map(|&(x, y)| n(&m, x, y))
            .collect();
        let gs = row_groups(&m, src, &dests);
        let total: usize = gs.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, dests.len());
        for g in &gs {
            assert!(
                is_conformant(PathRule::YX, &m, src, &g.members),
                "row group {:?} not YX-conformant",
                g
            );
        }
    }

    #[test]
    fn serpentine_single_worm_east_of_home() {
        let m = m8();
        let home = n(&m, 1, 4);
        let sharers = [n(&m, 3, 2), n(&m, 3, 6), n(&m, 5, 1), n(&m, 6, 7)];
        let ws = serpentine(&m, home, &sharers);
        assert_eq!(ws.len(), 1);
        let w = &ws[0];
        assert!(is_conformant(PathRule::WestFirst, &m, home, &w.dests), "{:?}", w.dests);
        let delivered: Vec<NodeId> =
            w.dests.iter().zip(&w.deliver).filter(|(_, &d)| d).map(|(&n, _)| n).collect();
        let mut want = sharers.to_vec();
        want.sort();
        let mut got = delivered.clone();
        got.sort();
        assert_eq!(got, want, "every sharer delivered exactly once");
    }

    #[test]
    fn serpentine_crosses_home_column_west_to_east() {
        let m = m8();
        let home = n(&m, 4, 4);
        let sharers = [n(&m, 1, 2), n(&m, 3, 5), n(&m, 6, 1)];
        let ws = serpentine(&m, home, &sharers);
        assert_eq!(ws.len(), 1);
        assert!(is_conformant(PathRule::WestFirst, &m, home, &ws[0].dests));
    }

    #[test]
    fn serpentine_straddled_west_column_splits() {
        let m = m8();
        let home = n(&m, 4, 4);
        // Westmost column 1 has sharers on both sides of the home row.
        let sharers = [n(&m, 1, 2), n(&m, 1, 6), n(&m, 5, 3)];
        let ws = serpentine(&m, home, &sharers);
        assert_eq!(ws.len(), 2, "straddle forces a second worm");
        for w in &ws {
            assert!(is_conformant(PathRule::WestFirst, &m, home, &w.dests), "{:?}", w.dests);
        }
        let total: usize = ws.iter().map(|w| w.deliver.iter().filter(|&&d| d).count()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn serpentine_waypoint_pins_interior_entry() {
        let m = m8();
        let home = n(&m, 0, 4);
        // Column 2 swept south ends at y=7; column 5's span 2..6 contains
        // neither extreme at y=7... y_cur=7 >= bot=6, so descending: pick a
        // case that really needs the waypoint: after col 2 ends at y=1
        // (north sweep), col 5 spans 0..3 with entry 1 strictly inside.
        let sharers = [n(&m, 2, 3), n(&m, 2, 1), n(&m, 5, 0), n(&m, 5, 3)];
        let ws = serpentine(&m, home, &sharers);
        for w in &ws {
            assert!(is_conformant(PathRule::WestFirst, &m, home, &w.dests), "{:?}", w.dests);
        }
        let delivered: usize = ws.iter().map(|w| w.deliver.iter().filter(|&&d| d).count()).sum();
        assert_eq!(delivered, 4);
        // At least one waypoint must have been used.
        let waypoints: usize = ws.iter().map(|w| w.deliver.iter().filter(|&&d| !d).count()).sum();
        assert!(waypoints >= 1, "interior entry requires a pre-positioning waypoint");
    }

    #[test]
    fn serpentine_west_home_row_uturn_gets_dogleg() {
        // Home (1,7); sharer due west ON the home row, another east: the
        // turnaround at (0,7) needs a vertical dogleg to stay turn-legal.
        let m = m8();
        let home = n(&m, 1, 7);
        let sharers = [n(&m, 0, 7), n(&m, 5, 7)];
        let ws = serpentine(&m, home, &sharers);
        assert_eq!(ws.len(), 1);
        assert!(is_conformant(PathRule::WestFirst, &m, home, &ws[0].dests), "{:?}", ws[0].dests);
        let delivered: usize = ws[0].deliver.iter().filter(|&&d| d).count();
        assert_eq!(delivered, 2);
        assert!(ws[0].deliver.iter().any(|&d| !d), "dogleg waypoint present");
        // The same shape away from the mesh edge doglegs the other way.
        let home = n(&m, 3, 0);
        let sharers = [n(&m, 0, 0), n(&m, 6, 0)];
        let ws = serpentine(&m, home, &sharers);
        assert!(is_conformant(PathRule::WestFirst, &m, home, &ws[0].dests), "{:?}", ws[0].dests);
    }

    /// Regression (release-mode correctness): duplicate sharers used to
    /// overwrite the on-row slot (`slot.2`) in release builds — the sharer
    /// was still invalidated, but a *triplicate* on-row entry silently
    /// collapsed without the debug_assert firing, and duplicates off the
    /// home row produced worms delivering to the same node twice. Both
    /// functions must now collapse duplicates up front, in debug and
    /// release alike.
    #[test]
    fn duplicate_sharers_are_collapsed() {
        let m = m8();
        let home = n(&m, 2, 4);
        // Duplicates on the home row, north of it, and south of it.
        let sharers = [
            n(&m, 5, 4),
            n(&m, 5, 4),
            n(&m, 5, 4),
            n(&m, 5, 1),
            n(&m, 5, 1),
            n(&m, 3, 6),
            n(&m, 3, 6),
        ];
        let gs = column_groups(&m, home, &sharers);
        let all: Vec<NodeId> = gs.iter().flat_map(|g| g.members.iter().copied()).collect();
        let mut want = vec![n(&m, 3, 6), n(&m, 5, 4), n(&m, 5, 1)];
        want.sort();
        let mut got = all.clone();
        got.sort();
        assert_eq!(got, want, "each unique sharer appears exactly once across groups");
        for g in &gs {
            let mut m2 = g.members.clone();
            m2.sort();
            m2.dedup();
            assert_eq!(m2.len(), g.members.len(), "no double-delivery inside {g:?}");
        }

        let rs = row_groups(&m, home, &sharers);
        let all: Vec<NodeId> = rs.iter().flat_map(|g| g.members.iter().copied()).collect();
        let mut got = all;
        got.sort();
        assert_eq!(got, want, "row_groups collapses duplicates too");
    }

    /// Regression: the system layer filters the home out of the sharer
    /// set, but the grouping helpers must stay well-defined if a caller
    /// forgets — the home lands in its own column's on-row slot exactly
    /// once (it must never be dropped or emitted twice, even when it also
    /// appears duplicated in the input).
    #[test]
    fn home_in_sharer_set_is_covered_exactly_once() {
        let m = m8();
        let home = n(&m, 2, 4);
        let sharers = [home, home, n(&m, 2, 1), n(&m, 6, 4)];
        let gs = column_groups(&m, home, &sharers);
        let all: Vec<NodeId> = gs.iter().flat_map(|g| g.members.iter().copied()).collect();
        assert_eq!(all.iter().filter(|&&s| s == home).count(), 1, "home covered exactly once");
        assert_eq!(all.len(), 3, "three unique inputs, three memberships");
    }

    /// Regression: one sharer per column (the widest grouping shape) must
    /// produce one singleton group per column, preserving ascending column
    /// order — with and without an on-row member.
    #[test]
    fn single_sharer_per_column_yields_singleton_groups() {
        let m = m8();
        let home = n(&m, 3, 3);
        let sharers = [n(&m, 0, 1), n(&m, 2, 3), n(&m, 5, 6), n(&m, 7, 3)];
        let gs = column_groups(&m, home, &sharers);
        assert_eq!(gs.len(), 4);
        for (g, &s) in gs.iter().zip(&sharers) {
            assert_eq!(g.members, vec![s], "singleton group per column");
        }
        assert!(gs.windows(2).all(|w| w[0].col < w[1].col), "ascending column order");
    }

    #[test]
    fn serpentine_empty_and_singleton() {
        let m = m8();
        let home = n(&m, 4, 4);
        assert!(serpentine(&m, home, &[]).is_empty());
        let ws = serpentine(&m, home, &[n(&m, 2, 2)]);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].dests, vec![n(&m, 2, 2)]);
        assert_eq!(ws[0].deliver, vec![true]);
    }
}
