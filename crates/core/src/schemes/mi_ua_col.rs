//! MI-UA(col): column-grouped multidestination invalidation worms with
//! unicast acknowledgements. Cuts the home's request-phase sends from `d`
//! to the number of column groups; the ack phase is unchanged.

use super::grouping::column_groups;
use super::{InvalidationScheme, SchemeKind};
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Multidestination Invalidation (column grouping), Unicast Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiUaCol;

impl InvalidationScheme for MiUaCol {
    fn name(&self) -> &'static str {
        SchemeKind::MiUaCol.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiUaCol
    }

    fn compatible_with(&self, _routing: BaseRouting) -> bool {
        // Row-then-monotone-column paths are legal under XY e-cube and
        // (as west-run or east-zigzag prefixes) under west-first.
        true
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let groups = column_groups(mesh, home, sharers);
        InvalPlan {
            request_worms: groups
                .iter()
                .map(|g| PlannedWorm::multicast(g.members.clone(), false))
                .collect(),
            actions: sharers.iter().map(|&s| (s, AckAction::Unicast)).collect(),
            relays: vec![],
            triggers: vec![],
            needed: sharers.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    #[test]
    fn groups_become_multicast_worms() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(2, 4);
        let sharers =
            vec![mesh.node_at(5, 1), mesh.node_at(5, 3), mesh.node_at(5, 6), mesh.node_at(0, 4)];
        let plan = MiUaCol.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        // Column 0: 1 group; column 5: north + south = 2 groups.
        assert_eq!(plan.request_worms.len(), 3);
        assert!(plan.request_worms.iter().all(|w| !w.reserve_iack));
        for w in &plan.request_worms {
            assert!(is_conformant(PathRule::XY, &mesh, home, &w.dests));
        }
        // Fewer sends than UI-UA (3 < 4), same d acks.
        assert!(plan.home_sends() < sharers.len());
        assert_eq!(plan.needed, 4);
    }

    #[test]
    fn single_column_single_worm() {
        let mesh = Mesh2D::square(16);
        let home = mesh.node_at(0, 0);
        let sharers: Vec<NodeId> = (2..10).map(|y| mesh.node_at(7, y)).collect();
        let plan = MiUaCol.plan(&mesh, home, &sharers);
        assert_eq!(plan.request_worms.len(), 1);
        assert_eq!(plan.request_worms[0].dests.len(), 8);
        assert_eq!(plan.home_sends(), 1);
    }
}
