//! UI-UA: the baseline framework — unicast invalidations, unicast
//! acknowledgements. `2d` messages per transaction, all serialized through
//! the home node's controllers (the hot-spot the paper attacks).

use super::{InvalidationScheme, SchemeKind};
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Unicast Invalidation, Unicast Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct UiUa;

impl InvalidationScheme for UiUa {
    fn name(&self) -> &'static str {
        SchemeKind::UiUa.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::UiUa
    }

    fn compatible_with(&self, _routing: BaseRouting) -> bool {
        true // unicasts are conformant everywhere
    }

    fn plan(&self, _mesh: &Mesh2D, _home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        InvalPlan {
            request_worms: sharers.iter().map(|&s| PlannedWorm::unicast(s)).collect(),
            actions: sharers.iter().map(|&s| (s, AckAction::Unicast)).collect(),
            relays: vec![],
            triggers: vec![],
            needed: sharers.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;

    #[test]
    fn one_worm_and_one_ack_per_sharer() {
        let mesh = Mesh2D::square(8);
        let sharers: Vec<NodeId> = [10u16, 20, 30].into_iter().map(NodeId).collect();
        let plan = UiUa.plan(&mesh, NodeId(0), &sharers);
        assert_eq!(plan.request_worms.len(), 3);
        assert_eq!(plan.needed, 3);
        assert!(plan.request_worms.iter().all(|w| w.dests.len() == 1 && !w.reserve_iack));
        assert!(plan.actions.iter().all(|(_, a)| *a == AckAction::Unicast));
        validate_plan(&plan, &sharers).unwrap();
        // Home sends d messages and will receive d acks: 2d total.
        assert_eq!(plan.home_sends(), 3);
    }
}
