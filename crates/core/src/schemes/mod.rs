//! Invalidation grouping schemes — the paper's contribution.
//!
//! Each scheme maps an invalidation transaction (home node + sharer set)
//! onto a set of base-routing-conformant worms for the request phase and a
//! per-sharer acknowledgement discipline for the ack phase:
//!
//! | scheme | framework | request worms | acknowledgements |
//! |---|---|---|---|
//! | [`UiUa`] | UI-UA | `d` unicasts | `d` unicast acks |
//! | [`MiUaCol`] | MI-UA | 1 multicast per column group | `d` unicast acks |
//! | [`MiMaCol`] | MI-MA | i-reserve worm per column group | 1 i-gather per group to home |
//! | [`MiMaTree`] | MI-MA | 1-2 row relay worms; delegates inject column worms | 1 i-gather per group to home |
//! | [`MiMaTwoPhase`] | MI-MA | i-reserve worm per column group | per-group gathers deposit at home-column i-ack buffers; <= 2 sweep gathers reach home |
//! | [`MiUaWf`] | MI-UA (turn model) | 1 serpentine worm (2 if the west column straddles) | `d` unicast acks |
//! | [`MiMaWf`] | MI-MA (turn model) | 1 serpentine i-reserve worm | two-phase deposits + sweeps |
//! | [`Dpm`] | MI-MA (turn model) | greedily merged serpentine partitions | two-phase deposits + sweeps |
//! | [`MiMaAdaptive`] | MI-MA (turn model) | load-steered merged serpentine partitions | two-phase deposits + sweeps |

pub mod grouping;

mod dpm;
mod mi_ma_adaptive;
mod mi_ma_col;
mod mi_ma_tree;
mod mi_ma_two_phase;
mod mi_ma_wf;
mod mi_ua_col;
mod mi_ua_wf;
mod two_phase_acks;
mod ui_ua;

pub use dpm::{dpm_partitions, partition_plan_cost, Dpm};
pub use mi_ma_adaptive::MiMaAdaptive;
pub use mi_ma_col::MiMaCol;
pub use mi_ma_tree::MiMaTree;
pub use mi_ma_two_phase::MiMaTwoPhase;
pub use mi_ma_wf::MiMaWf;
pub use mi_ua_col::MiUaCol;
pub use mi_ua_wf::MiUaWf;
pub use ui_ua::UiUa;

use crate::plan::InvalPlan;
use wormdsm_mesh::network::LinkLoadMeter;
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_sim::Cycle;

/// A grouping scheme: turns (home, sharers) into an invalidation plan.
///
/// `sharers` excludes the writer and the home node itself (the system
/// handles those locally) and is never empty.
pub trait InvalidationScheme: Send + Sync {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// The scheme's enum tag.
    fn kind(&self) -> SchemeKind;

    /// True when the scheme's worms are conformant under `routing`.
    fn compatible_with(&self, routing: BaseRouting) -> bool;

    /// Build the plan for one invalidation transaction.
    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan;

    /// Window length (cycles) of the link-load summary this scheme wants,
    /// or `None` for purely static schemes.
    ///
    /// When `Some(w)`, the system attaches a [`LinkLoadMeter`] with window
    /// `w` to the network and passes it to [`plan_with_load`] on every
    /// invalidation. The meter reads only *committed* windows of the
    /// bit-identical `link_busy` counters, so plans stay deterministic
    /// across tile counts.
    ///
    /// [`plan_with_load`]: InvalidationScheme::plan_with_load
    fn feedback_window(&self) -> Option<Cycle> {
        None
    }

    /// Build the plan, optionally consulting a committed link-load summary.
    ///
    /// Static schemes ignore `load` (the default forwards to [`plan`]);
    /// adaptive schemes use it to steer groups away from congested links.
    ///
    /// [`plan`]: InvalidationScheme::plan
    fn plan_with_load(
        &self,
        mesh: &Mesh2D,
        home: NodeId,
        sharers: &[NodeId],
        load: Option<&LinkLoadMeter>,
    ) -> InvalPlan {
        let _ = load;
        self.plan(mesh, home, sharers)
    }
}

/// Enumeration of the implemented schemes (the paper's six grouping
/// schemes plus the UI-UA baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Unicast invalidations, unicast acks (baseline).
    UiUa,
    /// Column multicast worms, unicast acks.
    MiUaCol,
    /// Column i-reserve worms, per-group i-gathers.
    MiMaCol,
    /// Row relay worm to delegates, delegate column worms, per-group
    /// i-gathers.
    MiMaTree,
    /// Column i-reserve worms, two-phase gather via home-column i-ack
    /// buffers.
    MiMaTwoPhase,
    /// West-first serpentine worm, unicast acks.
    MiUaWf,
    /// West-first serpentine i-reserve worm, two-phase gathers.
    MiMaWf,
    /// Dynamic partition merging: greedy adjacent merge of column
    /// partitions into serpentine worms, two-phase gathers.
    Dpm,
    /// Online DPM variant steered by the committed link-load summary.
    MiMaAdaptive,
}

impl SchemeKind {
    /// All schemes, baseline first.
    pub const ALL: [SchemeKind; 9] = [
        SchemeKind::UiUa,
        SchemeKind::MiUaCol,
        SchemeKind::MiMaCol,
        SchemeKind::MiMaTree,
        SchemeKind::MiMaTwoPhase,
        SchemeKind::MiUaWf,
        SchemeKind::MiMaWf,
        SchemeKind::Dpm,
        SchemeKind::MiMaAdaptive,
    ];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::UiUa => "UI-UA",
            SchemeKind::MiUaCol => "MI-UA(col)",
            SchemeKind::MiMaCol => "MI-MA(col)",
            SchemeKind::MiMaTree => "MI-MA(tree)",
            SchemeKind::MiMaTwoPhase => "MI-MA(2ph)",
            SchemeKind::MiUaWf => "MI-UA(wf)",
            SchemeKind::MiMaWf => "MI-MA(wf)",
            SchemeKind::Dpm => "DPM",
            SchemeKind::MiMaAdaptive => "MI-MA(ada)",
        }
    }

    /// Inverse of [`name`](Self::name): resolve a scheme from its short
    /// name, case-insensitively and ignoring surrounding whitespace
    /// (`"mi-ma(tree)"`, `" DPM "`). This is the single parse point for
    /// every external surface that names schemes as strings — CLI args,
    /// farm job submissions — so a new scheme added to [`ALL`](Self::ALL)
    /// becomes parseable without touching callers.
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim();
        Self::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(t))
    }

    /// The base routing the scheme is designed for.
    ///
    /// Exhaustive on purpose: adding a scheme must force a decision here
    /// rather than silently inheriting e-cube via a wildcard.
    pub fn natural_routing(self) -> BaseRouting {
        match self {
            SchemeKind::UiUa
            | SchemeKind::MiUaCol
            | SchemeKind::MiMaCol
            | SchemeKind::MiMaTree
            | SchemeKind::MiMaTwoPhase => BaseRouting::ECube,
            SchemeKind::MiUaWf
            | SchemeKind::MiMaWf
            | SchemeKind::Dpm
            | SchemeKind::MiMaAdaptive => BaseRouting::TurnModel,
        }
    }

    /// Instantiate the scheme.
    pub fn build(self) -> Box<dyn InvalidationScheme> {
        match self {
            SchemeKind::UiUa => Box::new(UiUa),
            SchemeKind::MiUaCol => Box::new(MiUaCol),
            SchemeKind::MiMaCol => Box::new(MiMaCol),
            SchemeKind::MiMaTree => Box::new(MiMaTree),
            SchemeKind::MiMaTwoPhase => Box::new(MiMaTwoPhase),
            SchemeKind::MiUaWf => Box::new(MiUaWf),
            SchemeKind::MiMaWf => Box::new(MiMaWf),
            SchemeKind::Dpm => Box::new(Dpm),
            SchemeKind::MiMaAdaptive => Box::new(MiMaAdaptive),
        }
    }
}

impl core::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-group gather construction shared by the MA column schemes: the
/// farthest member initiates a gather visiting the rest of the group
/// (far-to-near) and ending at `tail`.
pub(crate) fn group_gather_dests(group: &grouping::Group, tail: NodeId) -> Vec<NodeId> {
    let mut dests: Vec<NodeId> = group.members.iter().rev().skip(1).copied().collect();
    dests.push(tail);
    dests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_build_and_name() {
        for k in SchemeKind::ALL {
            let s = k.build();
            assert_eq!(s.kind(), k);
            assert!(!s.name().is_empty());
            assert!(s.compatible_with(k.natural_routing()), "{k} incompatible with its routing");
        }
    }

    /// `parse` must round-trip every scheme's `name()` and stay total
    /// over the `ALL` list, so string surfaces (CLI, farm jobs) can never
    /// drift from the enum.
    #[test]
    fn parse_round_trips_every_scheme_name() {
        for k in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(k.name()), Some(k));
            assert_eq!(SchemeKind::parse(&k.name().to_ascii_lowercase()), Some(k));
            assert_eq!(SchemeKind::parse(&format!("  {}  ", k.name())), Some(k));
        }
        assert_eq!(SchemeKind::parse("MI-MA(nope)"), None);
        assert_eq!(SchemeKind::parse(""), None);
    }

    #[test]
    fn wf_schemes_need_turn_model() {
        assert!(!SchemeKind::MiUaWf.build().compatible_with(BaseRouting::ECube));
        assert!(!SchemeKind::MiMaWf.build().compatible_with(BaseRouting::ECube));
        // Column schemes are conformant under both.
        assert!(SchemeKind::MiMaCol.build().compatible_with(BaseRouting::TurnModel));
        assert!(SchemeKind::UiUa.build().compatible_with(BaseRouting::TurnModel));
    }

    #[test]
    fn group_gather_dest_order() {
        let g = grouping::Group { col: 2, members: vec![NodeId(10), NodeId(20), NodeId(30)] };
        // Initiator = farthest (30); dests = 20, 10, tail.
        assert_eq!(group_gather_dests(&g, NodeId(99)), vec![NodeId(20), NodeId(10), NodeId(99)]);
        let single = grouping::Group { col: 2, members: vec![NodeId(10)] };
        assert_eq!(group_gather_dests(&single, NodeId(99)), vec![NodeId(99)]);
    }
}
