//! MI-MA(2ph): column i-reserve worms with the two-phase acknowledgement
//! collection — first-level gathers deposit into home-column i-ack
//! buffers; at most one sweep gather per side interrupts the home. This is
//! the scheme that leans hardest on the paper's router-interface i-ack
//! buffers.

use super::grouping::column_groups;
use super::two_phase_acks::two_phase_acks;
use super::{InvalidationScheme, SchemeKind};
use crate::plan::{InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Multidestination Invalidation, two-phase Multidestination
/// Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiMaTwoPhase;

impl InvalidationScheme for MiMaTwoPhase {
    fn name(&self) -> &'static str {
        SchemeKind::MiMaTwoPhase.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiMaTwoPhase
    }

    fn compatible_with(&self, _routing: BaseRouting) -> bool {
        true
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let groups = column_groups(mesh, home, sharers);
        let acks = two_phase_acks(mesh, home, &groups);
        InvalPlan {
            request_worms: groups
                .iter()
                .map(|g| PlannedWorm::multicast(g.members.clone(), true))
                .collect(),
            actions: acks.actions,
            relays: vec![],
            triggers: acks.triggers,
            needed: sharers.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{validate_plan, AckAction};

    #[test]
    fn plan_is_structurally_valid_and_reduces_home_messages() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 4);
        let sharers: Vec<NodeId> = [(0, 1), (1, 2), (5, 1), (6, 2), (1, 6), (5, 7)]
            .iter()
            .map(|&(x, y)| mesh.node_at(x, y))
            .collect();
        let plan = MiMaTwoPhase.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        // Request: one worm per group (6 singleton groups).
        assert_eq!(plan.request_worms.len(), 6);
        // Two sweeps (north + south), so home receives 2 sweep gathers
        // plus the one north group whose row assignment ran into the home
        // row (direct) — 3 receives instead of 6 unicast acks.
        assert_eq!(plan.triggers.len(), 2);
        let deposits = plan
            .actions
            .iter()
            .filter(|(_, a)| matches!(a, AckAction::InitGather(w) if w.gather_deposit))
            .count();
        assert_eq!(deposits, 3);
    }

    #[test]
    fn dense_column_groups_still_validate() {
        let mesh = Mesh2D::square(16);
        let home = mesh.node_at(8, 8);
        let mut sharers = Vec::new();
        for x in [2usize, 5, 8, 11, 14] {
            for y in [1usize, 4, 8, 12, 15] {
                let n = mesh.node_at(x, y);
                if n != home {
                    sharers.push(n);
                }
            }
        }
        let plan = MiMaTwoPhase.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        assert!(plan.triggers.len() <= 2);
    }
}
