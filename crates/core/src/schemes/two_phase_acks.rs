//! Shared two-phase acknowledgement planner.
//!
//! Used by [`super::MiMaTwoPhase`] and [`super::MiMaWf`]: per-group
//! first-level i-gathers deposit their counts into i-ack buffer entries at
//! *home-column* router interfaces instead of interrupting the home; per
//! side (north/south of the home row) one *sweep* i-gather then collects
//! every deposit in a single pure-column pass ending at the home. The home
//! therefore receives at most two combined acknowledgements (plus any
//! groups that degrade to direct gathers).
//!
//! Row assignment: first-level gathers land on the home column at the row
//! where their Y-phase ends; rows are made unique per side (extending a
//! gather's Y-phase toward the home row where needed) so that deposits
//! never collide with the sweep trigger. The side's outermost gather is the
//! *trigger*: it terminates with a `SweepTrigger` delivery and its node
//! injects the sweep.

use super::group_gather_dests;
use super::grouping::Group;
use crate::plan::{AckAction, PlannedWorm};
use wormdsm_mesh::topology::{Mesh2D, NodeId};

/// Result of two-phase ack planning.
#[derive(Debug, Default)]
pub(crate) struct TwoPhaseAcks {
    /// Per-sharer actions (Post / InitGather).
    pub actions: Vec<(NodeId, AckAction)>,
    /// Sweep-trigger nodes and the sweep worms they inject.
    pub triggers: Vec<(NodeId, PlannedWorm)>,
    /// Number of gather messages that go directly to the home (direct
    /// groups + sweeps), for message-count reasoning in tests.
    pub home_gathers: usize,
}

/// Plan the acknowledgement phase for `groups`.
pub(crate) fn two_phase_acks(mesh: &Mesh2D, home: NodeId, groups: &[Group]) -> TwoPhaseAcks {
    let h = mesh.coord(home);
    let (hx, hy) = (h.x as usize, h.y as usize);
    let mut out = TwoPhaseAcks::default();

    // Rows on the home column that deposits must avoid: a home-column
    // *sharer* posts its own i-ack at that router interface under the same
    // transaction id, and its group's gather would swallow a co-located
    // deposit (and the sweep would then park forever). The scheme simply
    // never lands a deposit on a sharer's router interface.
    let blocked_rows: std::collections::HashSet<usize> = groups
        .iter()
        .filter(|g| g.col == hx)
        .flat_map(|g| g.members.iter().map(|m| mesh.coord(*m).y as usize))
        .collect();

    let mut north: Vec<&Group> = Vec::new();
    let mut south: Vec<&Group> = Vec::new();
    let mut direct: Vec<&Group> = Vec::new();
    for g in groups {
        let near_y = mesh.coord(g.nearest()).y as usize;
        if g.col == hx || near_y == hy {
            direct.push(g);
        } else if near_y < hy {
            north.push(g);
        } else {
            south.push(g);
        }
    }

    // Post actions for every non-initiator member.
    for g in groups {
        for &m in &g.members[..g.members.len() - 1] {
            out.actions.push((m, AckAction::Post));
        }
    }

    for g in direct {
        let w = PlannedWorm::gather(group_gather_dests(g, home), 1, false);
        out.actions.push((g.farthest(), AckAction::InitGather(w)));
        out.home_gathers += 1;
    }

    // One side at a time; `toward_home` = +1 for north (rows grow toward
    // hy), -1 for south.
    for (mut side, toward) in [(north, 1isize), (south, -1isize)] {
        if side.is_empty() {
            continue;
        }
        // Outermost first: north = smallest row, south = largest row.
        side.sort_by_key(|g| {
            let y = mesh.coord(g.nearest()).y as isize;
            y * toward
        });
        if side.len() == 1 {
            let g = side[0];
            let w = PlannedWorm::gather(group_gather_dests(g, home), 1, false);
            out.actions.push((g.farthest(), AckAction::InitGather(w)));
            out.home_gathers += 1;
            continue;
        }
        let trigger = side[0];
        let y_t = mesh.coord(trigger.nearest()).y as usize;
        let trigger_node = mesh.node_at(hx, y_t);
        let mut last_row = y_t as isize;
        let mut deposit_nodes: Vec<NodeId> = Vec::new();
        for g in &side[1..] {
            let near = mesh.coord(g.nearest()).y as isize;
            // Candidate row: beyond the last assigned row, at least the
            // gather's natural landing row, moving toward the home row —
            // skipping rows whose home-column node is itself a sharer.
            let mut row = last_row + toward;
            if (row - near) * toward < 0 {
                row = near;
            }
            while row >= 0
                && (row as usize) < mesh.height()
                && blocked_rows.contains(&(row as usize))
            {
                row += toward;
            }
            let past_home =
                (row as usize >= hy && toward > 0) || (row as usize <= hy && toward < 0);
            if past_home {
                // No unique row left before the home: degrade to a direct
                // gather.
                let w = PlannedWorm::gather(group_gather_dests(g, home), 1, false);
                out.actions.push((g.farthest(), AckAction::InitGather(w)));
                out.home_gathers += 1;
                continue;
            }
            last_row = row;
            let node = mesh.node_at(hx, row as usize);
            deposit_nodes.push(node);
            let w = PlannedWorm::gather(group_gather_dests(g, node), 1, true);
            out.actions.push((g.farthest(), AckAction::InitGather(w)));
        }
        if deposit_nodes.is_empty() {
            // Everyone degraded: trigger also goes direct.
            let w = PlannedWorm::gather(group_gather_dests(trigger, home), 1, false);
            out.actions.push((trigger.farthest(), AckAction::InitGather(w)));
            out.home_gathers += 1;
            continue;
        }
        // Trigger gather terminates at the trigger node (SweepTrigger
        // delivery); the sweep visits deposits inward and ends at home.
        let w = PlannedWorm::gather(group_gather_dests(trigger, trigger_node), 1, false);
        out.actions.push((trigger.farthest(), AckAction::InitGather(w)));
        let mut sweep_dests = deposit_nodes;
        sweep_dests.push(home);
        out.triggers.push((trigger_node, PlannedWorm::gather(sweep_dests, 0, false)));
        out.home_gathers += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::grouping::column_groups;
    use super::*;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    fn check_conformance(mesh: &Mesh2D, acks: &TwoPhaseAcks) {
        for (init, a) in &acks.actions {
            if let AckAction::InitGather(w) = a {
                assert!(
                    is_conformant(PathRule::YX, mesh, *init, &w.dests),
                    "gather from {init}: {:?}",
                    w.dests
                );
            }
        }
        for (node, w) in &acks.triggers {
            assert!(
                is_conformant(PathRule::YX, mesh, *node, &w.dests),
                "sweep from {node}: {:?}",
                w.dests
            );
        }
    }

    #[test]
    fn multi_column_north_side_uses_one_sweep() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(3, 6);
        // Three north-side columns with distinct landing rows.
        let sharers = vec![mesh.node_at(0, 1), mesh.node_at(1, 3), mesh.node_at(6, 4)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        assert_eq!(acks.triggers.len(), 1, "one north sweep");
        // Home receives just the sweep.
        assert_eq!(acks.home_gathers, 1);
        // Trigger node is on the home column at the outermost landing row.
        assert_eq!(acks.triggers[0].0, mesh.node_at(3, 1));
        // Sweep ends at home.
        assert_eq!(*acks.triggers[0].1.dests.last().unwrap(), home);
        // Exactly one deposit-flagged gather per non-trigger group.
        let deposits = acks
            .actions
            .iter()
            .filter(|(_, a)| matches!(a, AckAction::InitGather(w) if w.gather_deposit))
            .count();
        assert_eq!(deposits, 2);
    }

    #[test]
    fn both_sides_get_sweeps() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers =
            vec![mesh.node_at(0, 1), mesh.node_at(2, 2), mesh.node_at(1, 6), mesh.node_at(6, 7)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        assert_eq!(acks.triggers.len(), 2, "north and south sweeps");
        assert_eq!(acks.home_gathers, 2);
    }

    #[test]
    fn single_group_side_goes_direct() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers = vec![mesh.node_at(1, 2), mesh.node_at(1, 1)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        assert!(acks.triggers.is_empty());
        assert_eq!(acks.home_gathers, 1);
    }

    #[test]
    fn home_column_groups_go_direct() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers = vec![mesh.node_at(4, 1), mesh.node_at(4, 7), mesh.node_at(4, 6)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        assert!(acks.triggers.is_empty());
        assert_eq!(acks.home_gathers, 2, "north + south home-column gathers");
    }

    #[test]
    fn row_collisions_resolved_uniquely() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 5);
        // Three columns all landing naturally at row 2.
        let sharers = vec![mesh.node_at(0, 2), mesh.node_at(2, 2), mesh.node_at(6, 2)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        assert_eq!(acks.triggers.len(), 1);
        // Deposits land at distinct rows 3 and 4 (trigger at 2).
        let sweep = &acks.triggers[0].1;
        assert_eq!(sweep.dests.len(), 3); // two deposits + home
        let rows: Vec<u8> = sweep.dests[..2].iter().map(|n| mesh.coord(*n).y).collect();
        assert_eq!(rows, vec![3, 4]);
    }

    #[test]
    fn deposits_avoid_home_column_sharers() {
        // Regression: home (4,5); sharer n36 = (4,4) sits on the home
        // column, and the column-0 group's natural deposit row is 4 — the
        // deposit must skip it or the sweep parks forever after n36's own
        // gather swallows the co-located count.
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 5);
        let sharers = vec![
            mesh.node_at(1, 1),
            mesh.node_at(4, 1),
            mesh.node_at(1, 3),
            mesh.node_at(0, 4),
            mesh.node_at(4, 4),
            mesh.node_at(5, 5),
        ];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        let sharer_set: std::collections::HashSet<NodeId> = sharers.iter().copied().collect();
        for (_, a) in &acks.actions {
            if let AckAction::InitGather(w) = a {
                if w.gather_deposit {
                    let node = *w.dests.last().unwrap();
                    assert!(!sharer_set.contains(&node), "deposit lands on sharer {node}");
                }
            }
        }
        for (_, sweep) in &acks.triggers {
            for d in &sweep.dests[..sweep.dests.len() - 1] {
                assert!(!sharer_set.contains(d), "sweep visits sharer {d}");
            }
        }
    }

    #[test]
    fn overflow_degrades_to_direct() {
        let mesh = Mesh2D::square(8);
        // Home at row 2: only rows 0..2 available on the north side.
        let home = mesh.node_at(4, 2);
        let sharers =
            vec![mesh.node_at(0, 1), mesh.node_at(1, 1), mesh.node_at(2, 1), mesh.node_at(3, 1)];
        let groups = column_groups(&mesh, home, &sharers);
        let acks = two_phase_acks(&mesh, home, &groups);
        check_conformance(&mesh, &acks);
        // Trigger at row 1, one deposit fits at row... row candidates: 2 is
        // home row -> past_home; everyone but one deposit... verify
        // home_gathers counts the degraded directs.
        let deposits = acks
            .actions
            .iter()
            .filter(|(_, a)| matches!(a, AckAction::InitGather(w) if w.gather_deposit))
            .count();
        assert!(deposits <= 1);
        assert!(acks.home_gathers >= 2, "degraded groups reach home directly");
    }
}
