//! MI-MA(wf): the turn-model serpentine request worm combined with the
//! two-phase gathered acknowledgement. The home's involvement per
//! transaction shrinks to ~1 send and at most 2 receives, independent of
//! the sharer count — the aggressive end of the paper's scheme spectrum.
//!
//! A single *gather* cannot legally end at an interior home under
//! west-first or its dual (it would need east hops after vertical moves),
//! so the ack phase reuses the two-phase i-ack-buffer machinery on the YX
//! reply network; sharers post acks allocated on demand (no i-reserve
//! flag: the serpentine visits gather initiators mid-path, so path-order
//! reservation would leak entries at them).

use super::grouping::{column_groups, serpentine};
use super::two_phase_acks::two_phase_acks;
use super::{InvalidationScheme, SchemeKind};
use crate::plan::{InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_mesh::worm::WormKind;

/// Serpentine Multidestination Invalidation, two-phase Multidestination
/// Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiMaWf;

impl InvalidationScheme for MiMaWf {
    fn name(&self) -> &'static str {
        SchemeKind::MiMaWf.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiMaWf
    }

    fn compatible_with(&self, routing: BaseRouting) -> bool {
        routing == BaseRouting::TurnModel
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let worms = serpentine(mesh, home, sharers);
        let groups = column_groups(mesh, home, sharers);
        let acks = two_phase_acks(mesh, home, &groups);
        InvalPlan {
            request_worms: worms
                .into_iter()
                .map(|w| {
                    let all_deliver = w.deliver.iter().all(|&d| d);
                    PlannedWorm {
                        kind: WormKind::Multicast,
                        dests: w.dests,
                        deliver: if all_deliver { None } else { Some(w.deliver) },
                        reserve_iack: false,
                        gather_deposit: false,
                        initial_acks: 0,
                        relay: false,
                    }
                })
                .collect(),
            actions: acks.actions,
            relays: vec![],
            triggers: acks.triggers,
            needed: sharers.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{validate_plan, AckAction};
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    #[test]
    fn minimal_home_involvement() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers: Vec<NodeId> = [(1, 2), (2, 6), (5, 1), (6, 5), (7, 7), (0, 3)]
            .iter()
            .map(|&(x, y)| mesh.node_at(x, y))
            .collect();
        let plan = MiMaWf.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        // One serpentine send; at most 2 sweep receives.
        assert_eq!(plan.request_worms.len(), 1);
        assert!(plan.triggers.len() <= 2);
        assert!(is_conformant(PathRule::WestFirst, &mesh, home, &plan.request_worms[0].dests));
        // Gathers and sweeps ride the YX reply net.
        for (init, a) in &plan.actions {
            if let AckAction::InitGather(w) = a {
                assert!(is_conformant(PathRule::YX, &mesh, *init, &w.dests));
            }
        }
        // No i-reserve on the serpentine (see module docs).
        assert!(!plan.request_worms[0].reserve_iack);
    }

    #[test]
    fn single_sharer_degenerates_cleanly() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers = vec![mesh.node_at(6, 2)];
        let plan = MiMaWf.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        assert_eq!(plan.request_worms.len(), 1);
        assert!(plan.triggers.is_empty());
        let AckAction::InitGather(w) = &plan.actions[0].1 else { panic!("gather expected") };
        assert_eq!(*w.dests.last().unwrap(), home);
    }
}
