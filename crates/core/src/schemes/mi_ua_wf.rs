//! MI-UA(wf): turn-model serpentine invalidation, unicast acks.
//!
//! Under west-first routing a single multidestination worm can run west
//! along the home row and then serpentine eastward through every sharer
//! column — the request phase collapses to one worm (two when the westmost
//! column straddles the home row) no matter how many sharers there are.

use super::grouping::serpentine;
use super::{InvalidationScheme, SchemeKind};
use crate::plan::{AckAction, InvalPlan, PlannedWorm};
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_mesh::worm::WormKind;

/// Serpentine Multidestination Invalidation, Unicast Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiUaWf;

impl InvalidationScheme for MiUaWf {
    fn name(&self) -> &'static str {
        SchemeKind::MiUaWf.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiUaWf
    }

    fn compatible_with(&self, routing: BaseRouting) -> bool {
        routing == BaseRouting::TurnModel
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        let worms = serpentine(mesh, home, sharers);
        InvalPlan {
            request_worms: worms
                .into_iter()
                .map(|w| {
                    let all_deliver = w.deliver.iter().all(|&d| d);
                    PlannedWorm {
                        kind: WormKind::Multicast,
                        dests: w.dests,
                        deliver: if all_deliver { None } else { Some(w.deliver) },
                        reserve_iack: false,
                        gather_deposit: false,
                        initial_acks: 0,
                        relay: false,
                    }
                })
                .collect(),
            actions: sharers.iter().map(|&s| (s, AckAction::Unicast)).collect(),
            relays: vec![],
            triggers: vec![],
            needed: sharers.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    #[test]
    fn one_worm_covers_scattered_sharers() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers: Vec<NodeId> = [(1, 2), (2, 6), (5, 1), (6, 5), (7, 7)]
            .iter()
            .map(|&(x, y)| mesh.node_at(x, y))
            .collect();
        let plan = MiUaWf.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        assert_eq!(plan.request_worms.len(), 1, "single serpentine worm");
        assert!(is_conformant(PathRule::WestFirst, &mesh, home, &plan.request_worms[0].dests));
        assert_eq!(plan.request_worms[0].delivering(), 5);
        assert!(plan.actions.iter().all(|(_, a)| *a == AckAction::Unicast));
    }

    #[test]
    fn straddled_west_column_needs_two_worms() {
        let mesh = Mesh2D::square(8);
        let home = mesh.node_at(4, 4);
        let sharers = vec![mesh.node_at(1, 1), mesh.node_at(1, 7), mesh.node_at(6, 3)];
        let plan = MiUaWf.plan(&mesh, home, &sharers);
        validate_plan(&plan, &sharers).unwrap();
        assert_eq!(plan.request_worms.len(), 2);
        let total: usize = plan.request_worms.iter().map(|w| w.delivering()).sum();
        assert_eq!(total, 3);
    }
}
