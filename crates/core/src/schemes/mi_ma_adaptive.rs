//! MI-MA(ada): the online, contention-adaptive variant of [`Dpm`].
//!
//! Identical machinery — greedy partition merging over serpentine
//! realizations, two-phase gathered acks — but the cost law is *loaded*:
//! every hop of a candidate path is surcharged in proportion to the
//! measured occupancy of the link it crosses, read from the network's
//! [`LinkLoadMeter`] summary. The effect is twofold:
//!
//! * **steer** — a merge whose serpentine crosses hot columns prices
//!   higher than staying split, so the greedy loop refuses it and the
//!   resulting worms route around the congestion (split partitions use
//!   shorter, different paths);
//! * **re-order** — worms are injected longest-loaded-flight first, so
//!   the home's serial `dc_send` occupancy delays the cheap worms, not
//!   the one gating the makespan.
//!
//! Determinism: the scheme reads only *committed* meter windows — deltas
//! of the bit-identical `NetStats::link_busy` counters taken at fixed
//! window boundaries of the serial-equivalent tick order. Tile count
//! (T=1 vs T=4), fast-forward, and snapshot/resume all preserve those
//! counters cycle-for-cycle, so the same run history always yields the
//! same plans (asserted end-to-end in `tests/full_stack.rs` and the
//! `exp_adaptive` bench).
//!
//! With no meter attached (or before the first window commits) every
//! penalty is zero and the scheme degenerates to exactly [`Dpm`] plus the
//! (then no-op) injection re-ordering.

use super::dpm::{assemble_plan, HopPenalty};
use super::{InvalidationScheme, SchemeKind};
use crate::plan::InvalPlan;
use wormdsm_mesh::network::LinkLoadMeter;
use wormdsm_mesh::routing::BaseRouting;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_sim::Cycle;

/// Link-load summary window the scheme asks the system to attach, cycles.
/// Long enough to smooth flit-level burstiness, short enough to track
/// phase changes in the workload.
pub(crate) const FEEDBACK_WINDOW: Cycle = 1024;

/// Hop surcharge at full link utilization, cycles. A fully busy link
/// (1000 milli-occupancy) prices like `LOAD_PENALTY` extra routers on the
/// path; a cold link adds nothing.
pub(crate) const LOAD_PENALTY: u64 = 8;

/// Per-hop penalty from the committed window: milli-occupancy of the
/// crossed link, scaled to cycles.
fn hop_penalty(mesh: &Mesh2D, load: &LinkLoadMeter, a: NodeId, b: NodeId) -> u64 {
    let link = a.idx() * 4 + mesh.hop_direction(a, b).index();
    load.load_milli(link) * LOAD_PENALTY / 1000
}

/// Contention-adaptive Multidestination Invalidation, two-phase
/// Multidestination Acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiMaAdaptive;

impl InvalidationScheme for MiMaAdaptive {
    fn name(&self) -> &'static str {
        SchemeKind::MiMaAdaptive.name()
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MiMaAdaptive
    }

    fn compatible_with(&self, routing: BaseRouting) -> bool {
        routing == BaseRouting::TurnModel
    }

    fn plan(&self, mesh: &Mesh2D, home: NodeId, sharers: &[NodeId]) -> InvalPlan {
        assemble_plan(mesh, home, sharers, None, true)
    }

    fn feedback_window(&self) -> Option<Cycle> {
        Some(FEEDBACK_WINDOW)
    }

    fn plan_with_load(
        &self,
        mesh: &Mesh2D,
        home: NodeId,
        sharers: &[NodeId],
        load: Option<&LinkLoadMeter>,
    ) -> InvalPlan {
        match load {
            Some(meter) if meter.commits() > 0 => {
                let pen = |a: NodeId, b: NodeId| hop_penalty(mesh, meter, a, b);
                let pen: HopPenalty<'_> = &pen;
                assemble_plan(mesh, home, sharers, Some(pen), true)
            }
            _ => self.plan(mesh, home, sharers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate_plan;
    use crate::schemes::Dpm;
    use wormdsm_mesh::routing::{is_conformant, PathRule};

    fn m8() -> Mesh2D {
        Mesh2D::square(8)
    }

    fn sharers(m: &Mesh2D) -> Vec<NodeId> {
        [(0, 1), (2, 6), (4, 2), (5, 5), (7, 3)].iter().map(|&(x, y)| m.node_at(x, y)).collect()
    }

    #[test]
    fn unloaded_plan_covers_like_dpm() {
        let m = m8();
        let home = m.node_at(3, 4);
        let s = sharers(&m);
        let plan = MiMaAdaptive.plan(&m, home, &s);
        validate_plan(&plan, &s).unwrap();
        // Same partitioning as DPM — only injection order may differ.
        let dpm = Dpm.plan(&m, home, &s);
        assert_eq!(plan.request_worms.len(), dpm.request_worms.len());
        let key = |p: &InvalPlan| {
            let mut v: Vec<Vec<NodeId>> = p.request_worms.iter().map(|w| w.dests.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&plan), key(&dpm));
    }

    #[test]
    fn empty_meter_is_identical_to_unloaded_plan() {
        let m = m8();
        let home = m.node_at(3, 4);
        let s = sharers(&m);
        let meter = LinkLoadMeter::new(m.nodes(), FEEDBACK_WINDOW);
        assert_eq!(meter.commits(), 0);
        let with = MiMaAdaptive.plan_with_load(&m, home, &s, Some(&meter));
        let without = MiMaAdaptive.plan_with_load(&m, home, &s, None);
        assert_eq!(with, without);
    }

    #[test]
    fn loaded_plans_stay_valid_and_conformant() {
        let m = m8();
        let home = m.node_at(3, 4);
        let s = sharers(&m);
        // Synthetic meter: saturate every eastbound link on row 2 and
        // force a commit by observing past the first boundary.
        let mut meter = LinkLoadMeter::new(m.nodes(), 64);
        let mut busy = vec![0u64; m.nodes() * 4];
        for x in 0..8 {
            busy[m.node_at(x, 2).idx() * 4] = 64; // East = index 0.
        }
        meter.observe(64, &busy);
        assert_eq!(meter.commits(), 1);
        let plan = MiMaAdaptive.plan_with_load(&m, home, &s, Some(&meter));
        validate_plan(&plan, &s).unwrap();
        for w in &plan.request_worms {
            assert!(is_conformant(PathRule::WestFirst, &m, home, &w.dests), "{:?}", w.dests);
        }
    }
}
