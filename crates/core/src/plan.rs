//! Invalidation transaction plans.
//!
//! An [`InvalPlan`] is everything a grouping scheme decides about one
//! invalidation transaction: the worms the home injects (request phase),
//! the per-sharer acknowledgement actions (ack phase), relay instructions
//! for delegate nodes (tree scheme), and second-phase sweep gathers
//! (two-phase schemes).

use wormdsm_mesh::topology::NodeId;
use wormdsm_mesh::worm::WormKind;

/// A worm a scheme wants injected, before the system fills in payload,
/// transaction id, lengths, and virtual network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedWorm {
    /// Worm kind (unicast / multicast / gather).
    pub kind: WormKind,
    /// Ordered, base-routing-conformant destination list.
    pub dests: Vec<NodeId>,
    /// Per-destination delivery mask (None = deliver everywhere); `false`
    /// entries are pure routing waypoints pinning adaptive paths.
    pub deliver: Option<Vec<bool>>,
    /// i-reserve worm: reserve an i-ack buffer entry at every delivering
    /// intermediate destination.
    pub reserve_iack: bool,
    /// Gather deposits its count into the final destination's i-ack buffer
    /// (first-level gather of the two-phase schemes).
    pub gather_deposit: bool,
    /// Acks carried at injection (gather initiators count themselves).
    pub initial_acks: u32,
    /// This request worm carries a `RelayInval` instruction to delegate
    /// nodes (tree scheme) instead of an invalidation.
    pub relay: bool,
}

impl PlannedWorm {
    /// A unicast invalidation to one sharer.
    pub fn unicast(dest: NodeId) -> Self {
        Self {
            kind: WormKind::Unicast,
            dests: vec![dest],
            deliver: None,
            reserve_iack: false,
            gather_deposit: false,
            initial_acks: 0,
            relay: false,
        }
    }

    /// A multicast invalidation worm over `dests`.
    pub fn multicast(dests: Vec<NodeId>, reserve_iack: bool) -> Self {
        Self {
            kind: WormKind::Multicast,
            dests,
            deliver: None,
            reserve_iack,
            gather_deposit: false,
            initial_acks: 0,
            relay: false,
        }
    }

    /// An i-gather worm over `dests` carrying `initial_acks`.
    pub fn gather(dests: Vec<NodeId>, initial_acks: u32, deposit: bool) -> Self {
        Self {
            kind: WormKind::Gather,
            dests,
            deliver: None,
            reserve_iack: false,
            gather_deposit: deposit,
            initial_acks,
            relay: false,
        }
    }

    /// Number of delivering destinations.
    pub fn delivering(&self) -> usize {
        match &self.deliver {
            None => self.dests.len(),
            Some(m) => m.iter().filter(|&&d| d).count(),
        }
    }
}

/// What a sharer does after invalidating its cached copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckAction {
    /// Send a unicast `InvAck` to the home node.
    Unicast,
    /// Post an i-ack signal into the local router-interface buffer (a
    /// following i-gather worm collects it). Falls back to a unicast ack
    /// if no buffer entry is available.
    Post,
    /// This sharer is the worm path's end: inject the given i-gather worm
    /// (which carries this sharer's own ack as its initial count).
    InitGather(PlannedWorm),
}

/// Complete plan for one invalidation transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalPlan {
    /// Worms the home node injects (invalidation / i-reserve worms, and
    /// the relay worm of the tree scheme).
    pub request_worms: Vec<PlannedWorm>,
    /// Per-sharer acknowledgement actions. Every sharer appears exactly
    /// once.
    pub actions: Vec<(NodeId, AckAction)>,
    /// Relay instructions: on receiving the relay message, `node` injects
    /// these worms (tree scheme delegates).
    pub relays: Vec<(NodeId, Vec<PlannedWorm>)>,
    /// Sweep triggers: when the `SweepTrigger` gather terminates at
    /// `node`, that node injects the given sweep worm, adding the
    /// delivered ack count to its initial count (two-phase schemes).
    pub triggers: Vec<(NodeId, PlannedWorm)>,
    /// Total acknowledgements the home must observe (= sharer count).
    pub needed: u32,
}

impl InvalPlan {
    /// The action recorded for `node`, if any.
    pub fn action_for(&self, node: NodeId) -> Option<&AckAction> {
        self.actions.iter().find(|(n, _)| *n == node).map(|(_, a)| a)
    }

    /// Messages the home sends in the request phase, for occupancy
    /// accounting.
    pub fn home_sends(&self) -> usize {
        self.request_worms.len()
    }

    /// The sweep worm triggered at `node`, if any.
    pub fn trigger_for(&self, node: NodeId) -> Option<&PlannedWorm> {
        self.triggers.iter().find(|(n, _)| *n == node).map(|(_, w)| w)
    }
}

/// Basic structural validation shared by all schemes' tests: every sharer
/// gets exactly one action; delivering destinations across invalidation
/// worms (request + relays) cover exactly the sharer set.
pub fn validate_plan(plan: &InvalPlan, sharers: &[NodeId]) -> Result<(), String> {
    use std::collections::HashSet;
    let sharer_set: HashSet<NodeId> = sharers.iter().copied().collect();
    if plan.needed as usize != sharers.len() {
        return Err(format!("needed {} != sharer count {}", plan.needed, sharers.len()));
    }
    let mut acted: HashSet<NodeId> = HashSet::new();
    for (n, _) in &plan.actions {
        if !acted.insert(*n) {
            return Err(format!("duplicate action for {n}"));
        }
        if !sharer_set.contains(n) {
            return Err(format!("action for non-sharer {n}"));
        }
    }
    if acted.len() != sharer_set.len() {
        return Err(format!("{} sharers missing actions", sharer_set.len() - acted.len()));
    }
    Ok(())
}

mod snap_impls {
    use super::*;
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for PlannedWorm {
        fn save(&self, w: &mut SnapWriter) {
            self.kind.save(w);
            self.dests.save(w);
            self.deliver.save(w);
            w.put_bool(self.reserve_iack);
            w.put_bool(self.gather_deposit);
            w.put_u32(self.initial_acks);
            w.put_bool(self.relay);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                kind: Snap::load(r)?,
                dests: Snap::load(r)?,
                deliver: Snap::load(r)?,
                reserve_iack: r.get_bool()?,
                gather_deposit: r.get_bool()?,
                initial_acks: r.get_u32()?,
                relay: r.get_bool()?,
            })
        }
    }

    impl Snap for AckAction {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                AckAction::Unicast => w.put_u8(0),
                AckAction::Post => w.put_u8(1),
                AckAction::InitGather(worm) => {
                    w.put_u8(2);
                    worm.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => AckAction::Unicast,
                1 => AckAction::Post,
                2 => AckAction::InitGather(Snap::load(r)?),
                t => return Err(SnapError::Corrupt(format!("AckAction tag {t}"))),
            })
        }
    }

    impl Snap for InvalPlan {
        fn save(&self, w: &mut SnapWriter) {
            self.request_worms.save(w);
            self.actions.save(w);
            self.relays.save(w);
            self.triggers.save(w);
            w.put_u32(self.needed);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                request_worms: Snap::load(r)?,
                actions: Snap::load(r)?,
                relays: Snap::load(r)?,
                triggers: Snap::load(r)?,
                needed: r.get_u32()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivering_counts_waypoints_out() {
        let mut w = PlannedWorm::multicast(vec![NodeId(1), NodeId(2), NodeId(3)], false);
        assert_eq!(w.delivering(), 3);
        w.deliver = Some(vec![false, true, true]);
        assert_eq!(w.delivering(), 2);
    }

    #[test]
    fn validate_catches_missing_and_duplicate_actions() {
        let sharers = [NodeId(1), NodeId(2)];
        let mut plan = InvalPlan { needed: 2, ..Default::default() };
        plan.actions.push((NodeId(1), AckAction::Unicast));
        assert!(validate_plan(&plan, &sharers).unwrap_err().contains("missing"));
        plan.actions.push((NodeId(1), AckAction::Post));
        assert!(validate_plan(&plan, &sharers).unwrap_err().contains("duplicate"));
        plan.actions.pop();
        plan.actions.push((NodeId(2), AckAction::Post));
        assert!(validate_plan(&plan, &sharers).is_ok());
    }

    #[test]
    fn validate_checks_needed_count() {
        let plan = InvalPlan { needed: 3, ..Default::default() };
        assert!(validate_plan(&plan, &[NodeId(1)]).is_err());
    }

    #[test]
    fn action_lookup() {
        let mut plan = InvalPlan::default();
        plan.actions.push((NodeId(5), AckAction::Unicast));
        assert_eq!(plan.action_for(NodeId(5)), Some(&AckAction::Unicast));
        assert_eq!(plan.action_for(NodeId(6)), None);
    }
}
