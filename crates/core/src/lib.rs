//! # wormdsm-core — multidestination cache-invalidation schemes + DSM engine
//!
//! The paper's primary contribution: nine invalidation grouping schemes
//! (the UI-UA baseline plus eight multidestination schemes over e-cube
//! and turn-model routing, including the dynamic-partition-merging and
//! contention-adaptive planners), an invalidation-plan representation,
//! and the
//! [`DsmSystem`] engine that executes a full directory-based DSM under
//! sequential consistency on the `wormdsm-mesh` network.
//!
//! ## Quick start
//!
//! ```
//! use wormdsm_core::{DsmSystem, MemOp, SchemeKind, SystemConfig};
//! use wormdsm_coherence::Addr;
//! use wormdsm_mesh::NodeId;
//!
//! let scheme = SchemeKind::MiMaCol;
//! let cfg = SystemConfig::for_scheme(4, scheme);
//! let mut sys = DsmSystem::new(cfg, scheme.build());
//! // One processor writes a block the others read.
//! sys.issue(NodeId(5), MemOp::Write(Addr(0x40)));
//! sys.run_until_idle(100_000).unwrap();
//! assert_eq!(sys.metrics().write_misses, 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod plan;
pub mod schemes;
pub mod system;

pub use config::{ConsistencyModel, SystemConfig};
pub use metrics::{
    to_prometheus, Metrics, RunMeta, NONDETERMINISTIC_METRIC_PREFIXES, RUN_SCHEMA_VERSION,
};
pub use plan::{AckAction, InvalPlan, PlannedWorm};
pub use schemes::{InvalidationScheme, SchemeKind};
pub use system::{DsmSystem, MemOp, SimError};
pub use wormdsm_mesh::{ContentionProbe, ContentionWindow, SpecMode};
pub use wormdsm_sim::profile::{Phase, TxnProfiler, TxnRecord};
pub use wormdsm_sim::trace::{FlightRecorder, InvariantViolation, TraceLevel};
