//! Whole-system configuration.

use crate::schemes::SchemeKind;
use wormdsm_coherence::{CostModel, MsgSizes};
use wormdsm_mesh::network::MeshConfig;

/// Memory consistency model the processors obey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyModel {
    /// Sequential consistency: one outstanding memory operation; every
    /// miss stalls the processor (the paper's headline configuration).
    Sequential,
    /// Release consistency: writes retire into a write buffer of the
    /// given depth and overlap with execution; reads still block;
    /// synchronization operations (barrier arrival, lock release) drain
    /// the buffer first. The paper notes its transaction structure
    /// carries over to RC — this is the ablation that shows how much of
    /// the win survives when write latency is hidden.
    Release {
        /// Maximum outstanding writes per processor.
        write_buffer: usize,
    },
}

/// Configuration of a full DSM system instance.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Network configuration (mesh size, routing, VCs, consumption
    /// channels, i-ack buffers).
    pub mesh: MeshConfig,
    /// Direct-mapped cache slots per node (2048 x 32 B = 64 KB default).
    pub cache_sets: usize,
    /// Cache block size in bytes.
    pub block_bytes: u64,
    /// Controller and memory timing.
    pub costs: CostModel,
    /// Message sizes in flits.
    pub sizes: MsgSizes,
    /// Consistency model (sequential by default, as in the paper).
    pub consistency: ConsistencyModel,
    /// Release barriers with multidestination worms (one worm per row
    /// group) instead of per-participant unicasts — the collective-
    /// communication extension from the group's barrier work \[37\].
    pub multicast_barriers: bool,
}

impl SystemConfig {
    /// The paper's technology point on a `k x k` mesh with e-cube routing.
    pub fn paper_defaults(k: usize) -> Self {
        Self {
            mesh: MeshConfig::paper_defaults(k),
            cache_sets: 2048,
            block_bytes: 32,
            costs: CostModel::default(),
            sizes: MsgSizes::default(),
            consistency: ConsistencyModel::Sequential,
            multicast_barriers: false,
        }
    }

    /// Paper defaults with the base routing `scheme` is designed for.
    pub fn for_scheme(k: usize, scheme: SchemeKind) -> Self {
        let mut cfg = Self::paper_defaults(k);
        cfg.mesh.routing = scheme.natural_routing();
        cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.mesh.mesh.nodes()
    }

    /// Check the configuration against the implementation's hard limits
    /// so an over-sized run fails up front with a clear message instead
    /// of mid-simulation.
    ///
    /// Delegates the network-level limits (occupancy-bitset capacity,
    /// u8-encoded channel/entry indices, hierarchy divisibility) to
    /// [`MeshConfig::validate`] and adds the system-level ones: `NodeId`
    /// is a `u16`, so a mesh may not exceed 65536 nodes, and the
    /// per-node cache must have at least one set.
    pub fn validate(&self) -> Result<(), String> {
        self.mesh.validate()?;
        if self.nodes() > usize::from(u16::MAX) + 1 {
            return Err(format!(
                "NodeId is a u16: {} nodes exceeds the 65536-node limit",
                self.nodes()
            ));
        }
        if self.cache_sets == 0 {
            return Err("cache_sets must be at least 1".to_string());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormdsm_mesh::routing::BaseRouting;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = SystemConfig::paper_defaults(8);
        assert_eq!(c.nodes(), 64);
        assert_eq!(c.mesh.router_delay, 4); // 20 ns
        assert_eq!(c.block_bytes, 32);
        assert_eq!(c.cache_sets * c.block_bytes as usize, 64 * 1024);
        assert_eq!(c.mesh.cons_channels, 4);
        assert_eq!(c.mesh.iack_buffers, 4);
    }

    #[test]
    fn default_consistency_is_sequential() {
        let c = SystemConfig::paper_defaults(4);
        assert_eq!(c.consistency, ConsistencyModel::Sequential);
        assert!(!c.multicast_barriers);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_hard_limits() {
        assert_eq!(SystemConfig::paper_defaults(8).validate(), Ok(()));

        let mut c = SystemConfig::paper_defaults(4);
        c.cache_sets = 0;
        assert!(c.validate().unwrap_err().contains("cache_sets"));

        // Over-provisioned VCs blow the router occupancy bitset; the
        // mesh-level check surfaces through the system-level validate.
        let mut c = SystemConfig::paper_defaults(4);
        c.mesh.vcs_per_vnet = 64;
        assert!(c.validate().unwrap_err().contains("occupancy bitset"));
    }

    #[test]
    fn for_scheme_selects_routing() {
        assert_eq!(
            SystemConfig::for_scheme(8, SchemeKind::MiMaCol).mesh.routing,
            BaseRouting::ECube
        );
        assert_eq!(
            SystemConfig::for_scheme(8, SchemeKind::MiUaWf).mesh.routing,
            BaseRouting::TurnModel
        );
    }
}
