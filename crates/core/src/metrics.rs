//! System-level metrics: the paper's four performance measures
//! (invalidation latency, home-node occupancy via message counts and busy
//! time, message counts, network traffic) plus processor-visible latencies.

use wormdsm_sim::{Histogram, Metric, Registry, Summary};

/// Aggregated run metrics. Network-level counters (flit-hops, link
/// utilization) live in [`wormdsm_mesh::NetStats`]; this struct holds the
/// protocol-level view.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Completed invalidation transactions (>= 1 remote sharer).
    pub inval_txns: u64,
    /// Cycles from the home starting a transaction to collecting every
    /// acknowledgement.
    pub inval_latency: Summary,
    /// Messages the home sent + received per invalidation transaction
    /// (the paper's occupancy proxy: "occupancy is proportional to the
    /// number of messages sent from and received by the home node").
    pub inval_home_msgs: Summary,
    /// Remote sharers invalidated per transaction.
    pub inval_set_size: Histogram,
    /// Processor-visible write latency (issue to resume), misses only.
    pub write_latency: Summary,
    /// Processor-visible read latency (issue to resume), misses only.
    pub read_latency: Summary,
    /// Cache hits.
    pub read_hits: u64,
    /// Cache write hits (Modified line).
    pub write_hits: u64,
    /// Read misses issued.
    pub read_misses: u64,
    /// Write misses / upgrades issued.
    pub write_misses: u64,
    /// Invalidation messages that arrived for blocks the cache had already
    /// silently evicted (still acknowledged).
    pub spurious_invals: u64,
    /// Read fills poisoned by a racing invalidation (the read is served
    /// once, the stale line is not installed).
    pub poisoned_fills: u64,
    /// i-ack posts that found the buffer full and were retried.
    pub iack_fallbacks: u64,
    /// Dirty writebacks sent.
    pub writebacks: u64,
    /// Fetches deferred at a node whose ownership grant was still in
    /// flight (window-of-vulnerability retries).
    pub fetch_retries: u64,
    /// Writebacks deferred at the home because they raced with an
    /// outstanding fetch.
    pub wb_retries: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Cycles processors spent stalled on memory (sum over processors).
    pub stall_cycles: u64,
    /// Cycles processors spent stalled at barriers/locks.
    pub sync_stall_cycles: u64,
    /// Promoted protocol invariants that fired (always-on auditing; any
    /// nonzero value means the run's results are untrustworthy).
    pub invariant_failures: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self {
            inval_txns: 0,
            inval_latency: Summary::new(),
            inval_home_msgs: Summary::new(),
            inval_set_size: Histogram::new(1, 256),
            write_latency: Summary::new(),
            read_latency: Summary::new(),
            read_hits: 0,
            write_hits: 0,
            read_misses: 0,
            write_misses: 0,
            spurious_invals: 0,
            poisoned_fills: 0,
            iack_fallbacks: 0,
            writebacks: 0,
            fetch_retries: 0,
            wb_retries: 0,
            barriers: 0,
            stall_cycles: 0,
            sync_stall_cycles: 0,
            invariant_failures: 0,
        }
    }

    /// Snapshot every metric into a [`Registry`] for export/printing.
    pub fn export(&self) -> Registry {
        let mut r = Registry::new();
        r.counter("inval_txns", self.inval_txns);
        r.summary("inval_latency", &self.inval_latency);
        r.summary("inval_home_msgs", &self.inval_home_msgs);
        r.histogram("inval_set_size", &self.inval_set_size);
        r.summary("write_latency", &self.write_latency);
        r.summary("read_latency", &self.read_latency);
        r.counter("read_hits", self.read_hits);
        r.counter("write_hits", self.write_hits);
        r.counter("read_misses", self.read_misses);
        r.counter("write_misses", self.write_misses);
        r.counter("spurious_invals", self.spurious_invals);
        r.counter("poisoned_fills", self.poisoned_fills);
        r.counter("iack_fallbacks", self.iack_fallbacks);
        r.counter("writebacks", self.writebacks);
        r.counter("fetch_retries", self.fetch_retries);
        r.counter("wb_retries", self.wb_retries);
        r.counter("barriers", self.barriers);
        r.counter("stall_cycles", self.stall_cycles);
        r.counter("sync_stall_cycles", self.sync_stall_cycles);
        r.counter("invariant_failures", self.invariant_failures);
        r
    }

    /// [`Metrics::export`] plus the flight recorder's lifetime counters.
    ///
    /// `trace_events_dropped > 0` means the recorder's ring overflowed:
    /// event dumps and `timeline()` reconstructions are *incomplete* even
    /// though they look well-formed (streaming consumers attached to the
    /// push path, like the profiler, are unaffected). Surfacing the count
    /// in every metrics export keeps that silent truncation loud.
    pub fn export_with_trace(&self, recorded: u64, dropped: u64) -> Registry {
        let mut r = self.export();
        r.counter("trace_events_recorded", recorded);
        r.counter("trace_events_dropped", dropped);
        r
    }

    /// Read hit ratio.
    pub fn read_hit_ratio(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

/// Version of the run-metadata row schema stamped by [`RunMeta::stamp`].
///
/// Bump when the set or meaning of `run_*` metrics changes, so offline
/// consumers of `BENCH_*.json` / farm job records can dispatch on it.
pub const RUN_SCHEMA_VERSION: u64 = 1;

/// Provenance metadata attached to every exported metrics row: which
/// schema the row speaks, what hardware produced it, and how long it
/// took on the wall clock.
///
/// None of this affects — or is affected by — simulated results; the
/// `run_*` names it stamps are *excluded* from determinism fingerprints
/// for exactly that reason (wall-clock seconds and host core counts vary
/// run to run while the simulation stays bit-identical).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// [`RUN_SCHEMA_VERSION`] at capture time.
    pub schema_version: u64,
    /// Logical cores the host reported (1 if unknown).
    pub host_cores: u64,
    /// Worker threads the run's pool actually used (0 = serial).
    pub pool_workers: u64,
    /// Wall-clock seconds the run took (0 until measured).
    pub wall_s: f64,
}

impl RunMeta {
    /// Capture host facts now; `pool_workers` is the effective pool size
    /// the caller resolved (after `WORMDSM_POOL_WORKERS` / flags).
    pub fn capture(pool_workers: usize) -> Self {
        let host_cores = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
        Self {
            schema_version: RUN_SCHEMA_VERSION,
            host_cores,
            pool_workers: pool_workers as u64,
            wall_s: 0.0,
        }
    }

    /// Builder-style wall-clock setter (seconds).
    pub fn with_wall_s(mut self, wall_s: f64) -> Self {
        self.wall_s = wall_s;
        self
    }

    /// Stamp the metadata into `r` under reserved `run_*` names.
    pub fn stamp(&self, r: &mut Registry) {
        r.counter("run_schema_version", self.schema_version);
        r.counter("run_host_cores", self.host_cores);
        r.counter("run_pool_workers", self.pool_workers);
        r.gauge("run_wall_s", self.wall_s);
    }

    /// Render as a small JSON object (for embedding in `BENCH_*.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"host_cores\":{},\"pool_workers\":{},\"wall_s\":{}}}",
            self.schema_version,
            self.host_cores,
            self.pool_workers,
            if self.wall_s.is_finite() { format!("{}", self.wall_s) } else { "null".into() }
        )
    }
}

/// Metric-name prefixes that vary between otherwise bit-identical runs
/// and must be ignored by determinism fingerprints / diffs: flight-
/// recorder lifetime counters (differ by trace level), [`RunMeta`]
/// provenance (differ by host and wall clock), and engine-execution
/// bookkeeping — speculative-window, express-fast-path, and scratch
/// counters record *how* the tick engine scheduled the run (tile count,
/// probe-forced serial schedules), never *what* was simulated.
pub const NONDETERMINISTIC_METRIC_PREFIXES: [&str; 5] =
    ["trace_events_", "run_", "net_spec_", "net_express_", "net_scratch_grows"];

fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        s.push(if ok { c } else { '_' });
    }
    if s.is_empty() {
        s.push('_');
    }
    s
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn prom_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs = Vec::with_capacity(labels.len() + 1);
    for &(k, v) in labels.iter().chain(extra.as_ref()) {
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        pairs.push(format!("{}=\"{}\"", prom_name(k), escaped));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render a [`Registry`] in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`), applying `labels` to every sample.
///
/// Mapping: counters → `counter`, gauges → `gauge`, summaries →
/// `summary` (`_count`/`_sum`, plus `_mean`/`_min`/`_max` gauges, since
/// the snapshot holds moments rather than quantiles), histograms →
/// `histogram` with cumulative `_bucket{le="..."}` samples whose edges
/// are the bucket *upper* bounds and whose `+Inf` bucket equals
/// `_count`. The registry's histogram snapshot does not retain the sum
/// of observations, so `_sum` is exposed as `NaN` rather than invented.
/// Names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset
/// (`net.cycles` → `net_cycles`).
pub fn to_prometheus(reg: &Registry, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let base = prom_labels(labels, None);
    for (name, m) in reg.iter() {
        let n = prom_name(name);
        match m {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {n} counter\n{n}{base} {v}\n"));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!("# TYPE {n} gauge\n{n}{base} {}\n", prom_f64(*v)));
            }
            Metric::Summary { count, sum, mean, min, max, .. } => {
                out.push_str(&format!("# TYPE {n} summary\n"));
                out.push_str(&format!("{n}_count{base} {count}\n"));
                out.push_str(&format!("{n}_sum{base} {}\n", prom_f64(*sum)));
                for (suffix, v) in [("mean", *mean), ("min", *min), ("max", *max)] {
                    out.push_str(&format!(
                        "# TYPE {n}_{suffix} gauge\n{n}_{suffix}{base} {}\n",
                        prom_f64(v)
                    ));
                }
            }
            Metric::Histogram { width, buckets, overflow, .. } => {
                out.push_str(&format!("# TYPE {n} histogram\n"));
                let mut cum = 0u64;
                for (lo, c) in buckets {
                    cum += c;
                    let le = format!("{}", lo + width);
                    let lbl = prom_labels(labels, Some(("le", &le)));
                    out.push_str(&format!("{n}_bucket{lbl} {cum}\n"));
                }
                cum += overflow;
                let lbl = prom_labels(labels, Some(("le", "+Inf")));
                out.push_str(&format!("{n}_bucket{lbl} {cum}\n"));
                out.push_str(&format!("{n}_count{base} {cum}\n"));
                out.push_str(&format!("{n}_sum{base} NaN\n"));
            }
        }
    }
    out
}

mod snap_impls {
    use super::*;
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for Metrics {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u64(self.inval_txns);
            self.inval_latency.save(w);
            self.inval_home_msgs.save(w);
            self.inval_set_size.save(w);
            self.write_latency.save(w);
            self.read_latency.save(w);
            w.put_u64(self.read_hits);
            w.put_u64(self.write_hits);
            w.put_u64(self.read_misses);
            w.put_u64(self.write_misses);
            w.put_u64(self.spurious_invals);
            w.put_u64(self.poisoned_fills);
            w.put_u64(self.iack_fallbacks);
            w.put_u64(self.writebacks);
            w.put_u64(self.fetch_retries);
            w.put_u64(self.wb_retries);
            w.put_u64(self.barriers);
            w.put_u64(self.stall_cycles);
            w.put_u64(self.sync_stall_cycles);
            w.put_u64(self.invariant_failures);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                inval_txns: r.get_u64()?,
                inval_latency: Snap::load(r)?,
                inval_home_msgs: Snap::load(r)?,
                inval_set_size: Snap::load(r)?,
                write_latency: Snap::load(r)?,
                read_latency: Snap::load(r)?,
                read_hits: r.get_u64()?,
                write_hits: r.get_u64()?,
                read_misses: r.get_u64()?,
                write_misses: r.get_u64()?,
                spurious_invals: r.get_u64()?,
                poisoned_fills: r.get_u64()?,
                iack_fallbacks: r.get_u64()?,
                writebacks: r.get_u64()?,
                fetch_retries: r.get_u64()?,
                wb_retries: r.get_u64()?,
                barriers: r.get_u64()?,
                stall_cycles: r.get_u64()?,
                sync_stall_cycles: r.get_u64()?,
                invariant_failures: r.get_u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_meta_stamps_reserved_names() {
        let meta = RunMeta::capture(6).with_wall_s(1.5);
        assert_eq!(meta.schema_version, RUN_SCHEMA_VERSION);
        assert!(meta.host_cores >= 1);
        let mut r = Registry::new();
        r.counter("inval_txns", 7);
        meta.stamp(&mut r);
        assert_eq!(r.get("run_schema_version").unwrap().as_counter(), Some(RUN_SCHEMA_VERSION));
        assert_eq!(r.get("run_pool_workers").unwrap().as_counter(), Some(6));
        assert_eq!(r.get("run_wall_s"), Some(&Metric::Gauge(1.5)));
        // Every stamped name sits behind the documented nondeterministic
        // prefix, so fingerprints that ignore the prefixes ignore all of it.
        for (name, _) in r.iter() {
            if name != "inval_txns" {
                assert!(
                    NONDETERMINISTIC_METRIC_PREFIXES.iter().any(|p| name.starts_with(p)),
                    "{name} not covered by the exclusion prefixes"
                );
            }
        }
        let j = meta.to_json();
        assert!(j.contains("\"schema_version\":1") && j.contains("\"wall_s\":1.5"));
    }

    #[test]
    fn prometheus_exposition_shapes() {
        let mut r = Registry::new();
        r.counter("net.cycles", 42);
        r.gauge("util", 0.5);
        let mut s = Summary::new();
        s.record(2.0);
        s.record(4.0);
        r.summary("lat", &s);
        let mut h = Histogram::new(10, 5);
        h.record(5);
        h.record(5);
        h.record(25);
        h.record(999); // overflow
        r.histogram("dist", &h);

        let text = to_prometheus(&r, &[("scheme", "MI-MA(tree)")]);
        // Name sanitized, labels applied.
        assert!(text.contains("# TYPE net_cycles counter\n"));
        assert!(text.contains("net_cycles{scheme=\"MI-MA(tree)\"} 42\n"));
        assert!(text.contains("util{scheme=\"MI-MA(tree)\"} 0.5\n"));
        // Summary expands to _count/_sum plus moment gauges.
        assert!(text.contains("lat_count{scheme=\"MI-MA(tree)\"} 2\n"));
        assert!(text.contains("lat_sum{scheme=\"MI-MA(tree)\"} 6\n"));
        assert!(text.contains("lat_mean{scheme=\"MI-MA(tree)\"} 3\n"));
        // Histogram buckets are cumulative with upper-bound edges and a
        // +Inf bucket equal to _count.
        assert!(text.contains("dist_bucket{scheme=\"MI-MA(tree)\",le=\"10\"} 2\n"));
        assert!(text.contains("dist_bucket{scheme=\"MI-MA(tree)\",le=\"30\"} 3\n"));
        assert!(text.contains("dist_bucket{scheme=\"MI-MA(tree)\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("dist_count{scheme=\"MI-MA(tree)\"} 4\n"));
        // Every non-comment line is `name{...} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed sample: {line}");
        }
    }

    #[test]
    fn prometheus_escapes_label_values_and_empty_labels() {
        let mut r = Registry::new();
        r.counter("c", 1);
        let text = to_prometheus(&r, &[("app", "a\"b\\c\nd")]);
        assert!(text.contains("c{app=\"a\\\"b\\\\c\\nd\"} 1\n"));
        let bare = to_prometheus(&r, &[]);
        assert!(bare.contains("\nc 1\n"));
    }

    #[test]
    fn hit_ratio_handles_empty() {
        let m = Metrics::new();
        assert_eq!(m.read_hit_ratio(), 0.0);
        let mut m = Metrics::new();
        m.read_hits = 3;
        m.read_misses = 1;
        assert!((m.read_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
