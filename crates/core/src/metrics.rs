//! System-level metrics: the paper's four performance measures
//! (invalidation latency, home-node occupancy via message counts and busy
//! time, message counts, network traffic) plus processor-visible latencies.

use wormdsm_sim::{Histogram, Registry, Summary};

/// Aggregated run metrics. Network-level counters (flit-hops, link
/// utilization) live in [`wormdsm_mesh::NetStats`]; this struct holds the
/// protocol-level view.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Completed invalidation transactions (>= 1 remote sharer).
    pub inval_txns: u64,
    /// Cycles from the home starting a transaction to collecting every
    /// acknowledgement.
    pub inval_latency: Summary,
    /// Messages the home sent + received per invalidation transaction
    /// (the paper's occupancy proxy: "occupancy is proportional to the
    /// number of messages sent from and received by the home node").
    pub inval_home_msgs: Summary,
    /// Remote sharers invalidated per transaction.
    pub inval_set_size: Histogram,
    /// Processor-visible write latency (issue to resume), misses only.
    pub write_latency: Summary,
    /// Processor-visible read latency (issue to resume), misses only.
    pub read_latency: Summary,
    /// Cache hits.
    pub read_hits: u64,
    /// Cache write hits (Modified line).
    pub write_hits: u64,
    /// Read misses issued.
    pub read_misses: u64,
    /// Write misses / upgrades issued.
    pub write_misses: u64,
    /// Invalidation messages that arrived for blocks the cache had already
    /// silently evicted (still acknowledged).
    pub spurious_invals: u64,
    /// Read fills poisoned by a racing invalidation (the read is served
    /// once, the stale line is not installed).
    pub poisoned_fills: u64,
    /// i-ack posts that found the buffer full and were retried.
    pub iack_fallbacks: u64,
    /// Dirty writebacks sent.
    pub writebacks: u64,
    /// Fetches deferred at a node whose ownership grant was still in
    /// flight (window-of-vulnerability retries).
    pub fetch_retries: u64,
    /// Writebacks deferred at the home because they raced with an
    /// outstanding fetch.
    pub wb_retries: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Cycles processors spent stalled on memory (sum over processors).
    pub stall_cycles: u64,
    /// Cycles processors spent stalled at barriers/locks.
    pub sync_stall_cycles: u64,
    /// Promoted protocol invariants that fired (always-on auditing; any
    /// nonzero value means the run's results are untrustworthy).
    pub invariant_failures: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self {
            inval_txns: 0,
            inval_latency: Summary::new(),
            inval_home_msgs: Summary::new(),
            inval_set_size: Histogram::new(1, 256),
            write_latency: Summary::new(),
            read_latency: Summary::new(),
            read_hits: 0,
            write_hits: 0,
            read_misses: 0,
            write_misses: 0,
            spurious_invals: 0,
            poisoned_fills: 0,
            iack_fallbacks: 0,
            writebacks: 0,
            fetch_retries: 0,
            wb_retries: 0,
            barriers: 0,
            stall_cycles: 0,
            sync_stall_cycles: 0,
            invariant_failures: 0,
        }
    }

    /// Snapshot every metric into a [`Registry`] for export/printing.
    pub fn export(&self) -> Registry {
        let mut r = Registry::new();
        r.counter("inval_txns", self.inval_txns);
        r.summary("inval_latency", &self.inval_latency);
        r.summary("inval_home_msgs", &self.inval_home_msgs);
        r.histogram("inval_set_size", &self.inval_set_size);
        r.summary("write_latency", &self.write_latency);
        r.summary("read_latency", &self.read_latency);
        r.counter("read_hits", self.read_hits);
        r.counter("write_hits", self.write_hits);
        r.counter("read_misses", self.read_misses);
        r.counter("write_misses", self.write_misses);
        r.counter("spurious_invals", self.spurious_invals);
        r.counter("poisoned_fills", self.poisoned_fills);
        r.counter("iack_fallbacks", self.iack_fallbacks);
        r.counter("writebacks", self.writebacks);
        r.counter("fetch_retries", self.fetch_retries);
        r.counter("wb_retries", self.wb_retries);
        r.counter("barriers", self.barriers);
        r.counter("stall_cycles", self.stall_cycles);
        r.counter("sync_stall_cycles", self.sync_stall_cycles);
        r.counter("invariant_failures", self.invariant_failures);
        r
    }

    /// [`Metrics::export`] plus the flight recorder's lifetime counters.
    ///
    /// `trace_events_dropped > 0` means the recorder's ring overflowed:
    /// event dumps and `timeline()` reconstructions are *incomplete* even
    /// though they look well-formed (streaming consumers attached to the
    /// push path, like the profiler, are unaffected). Surfacing the count
    /// in every metrics export keeps that silent truncation loud.
    pub fn export_with_trace(&self, recorded: u64, dropped: u64) -> Registry {
        let mut r = self.export();
        r.counter("trace_events_recorded", recorded);
        r.counter("trace_events_dropped", dropped);
        r
    }

    /// Read hit ratio.
    pub fn read_hit_ratio(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

mod snap_impls {
    use super::*;
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for Metrics {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u64(self.inval_txns);
            self.inval_latency.save(w);
            self.inval_home_msgs.save(w);
            self.inval_set_size.save(w);
            self.write_latency.save(w);
            self.read_latency.save(w);
            w.put_u64(self.read_hits);
            w.put_u64(self.write_hits);
            w.put_u64(self.read_misses);
            w.put_u64(self.write_misses);
            w.put_u64(self.spurious_invals);
            w.put_u64(self.poisoned_fills);
            w.put_u64(self.iack_fallbacks);
            w.put_u64(self.writebacks);
            w.put_u64(self.fetch_retries);
            w.put_u64(self.wb_retries);
            w.put_u64(self.barriers);
            w.put_u64(self.stall_cycles);
            w.put_u64(self.sync_stall_cycles);
            w.put_u64(self.invariant_failures);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Self {
                inval_txns: r.get_u64()?,
                inval_latency: Snap::load(r)?,
                inval_home_msgs: Snap::load(r)?,
                inval_set_size: Snap::load(r)?,
                write_latency: Snap::load(r)?,
                read_latency: Snap::load(r)?,
                read_hits: r.get_u64()?,
                write_hits: r.get_u64()?,
                read_misses: r.get_u64()?,
                write_misses: r.get_u64()?,
                spurious_invals: r.get_u64()?,
                poisoned_fills: r.get_u64()?,
                iack_fallbacks: r.get_u64()?,
                writebacks: r.get_u64()?,
                fetch_retries: r.get_u64()?,
                wb_retries: r.get_u64()?,
                barriers: r.get_u64()?,
                stall_cycles: r.get_u64()?,
                sync_stall_cycles: r.get_u64()?,
                invariant_failures: r.get_u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty() {
        let m = Metrics::new();
        assert_eq!(m.read_hit_ratio(), 0.0);
        let mut m = Metrics::new();
        m.read_hits = 3;
        m.read_misses = 1;
        assert!((m.read_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
