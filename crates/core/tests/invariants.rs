//! Force each promoted protocol invariant to fire and verify the
//! always-on auditing pipeline end-to-end: the violation is recorded
//! (never a panic — these run in release too), the run surfaces it as
//! [`SimError::Invariant`], and the attached flight-recorder dump is
//! non-empty even with tracing at its default runtime level (Off).
//!
//! Malformed traffic is injected through [`DsmSystem::debug_deliver`],
//! which hands a forged protocol message straight to a node's cache
//! controller as if the network had delivered it.

use wormdsm_coherence::{Addr, BlockId, ProtoMsg};
use wormdsm_core::{DsmSystem, MemOp, SchemeKind, SimError, SystemConfig};
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_mesh::TxnId;
use wormdsm_sim::trace::TraceKind;

fn system(k: usize, scheme: SchemeKind) -> DsmSystem {
    DsmSystem::new(SystemConfig::for_scheme(k, scheme), scheme.build())
}

fn addr_of_block(sys: &DsmSystem, b: u64) -> Addr {
    Addr(b * sys.config().block_bytes)
}

/// Seed a scattered sharer set on block 0 (home = node 0), start a write
/// from the far corner and step until the invalidation transaction opens.
fn open_invalidation(sys: &mut DsmSystem) -> (TxnId, BlockId) {
    let k = 4;
    let mesh = Mesh2D::square(k);
    let a = addr_of_block(sys, 0);
    let b = sys.geometry().block_of(a);
    let sharers: Vec<NodeId> =
        [(1, 1), (2, 2), (3, 1), (1, 3)].iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
    sys.seed_shared(b, &sharers);
    sys.issue(mesh.node_at(k - 1, 0), MemOp::Write(a));
    for _ in 0..10_000 {
        if let Some(&txn) = sys.open_txn_ids().first() {
            return (txn, b);
        }
        sys.step();
    }
    panic!("invalidation transaction never opened");
}

/// Every surfaced violation must carry a non-empty recorder dump (the
/// `invariant_fired` event is pushed unconditionally, so even a run with
/// tracing off has at least that) and a bumped failure counter.
fn assert_violation(sys: &mut DsmSystem, needle: &str) {
    let err = sys.run_until_idle(100_000).unwrap_err();
    let SimError::Invariant(v) = err else { panic!("expected invariant error, got {err}") };
    assert!(v.what.contains(needle), "violation {:?} does not mention {needle:?}", v.what);
    assert!(!v.recent.is_empty(), "violation dump is empty");
    assert!(
        v.recent.iter().any(|e| matches!(e.kind, TraceKind::InvariantFired { .. })),
        "dump lacks the invariant_fired marker"
    );
    assert!(sys.metrics().invariant_failures >= 1);
    let shown = v.to_string();
    assert!(shown.contains("protocol invariant violated"), "{shown}");
    // The same violation is also available without consuming the error.
    assert_eq!(sys.invariant_violation().map(|w| w.what.as_str()), Some(v.what.as_str()));
}

#[test]
fn ack_for_dead_transaction_is_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let b = sys.geometry().block_of(addr_of_block(&sys, 0));
    sys.debug_deliver(
        NodeId(0),
        ProtoMsg::InvAck { block: b, txn: TxnId(42), count: 1 },
        1,
        NodeId(5),
    );
    assert_violation(&mut sys, "dead transaction");
}

#[test]
fn ack_delivered_to_wrong_home_is_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let (txn, b) = open_invalidation(&mut sys);
    let not_home = NodeId(5);
    sys.debug_deliver(not_home, ProtoMsg::InvAck { block: b, txn, count: 1 }, 1, NodeId(6));
    assert_violation(&mut sys, "homed at");
}

#[test]
fn over_collected_acks_are_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let (txn, b) = open_invalidation(&mut sys);
    // A forged bulk ack overshoots the needed count; completion must
    // notice got != needed.
    sys.debug_deliver(NodeId(0), ProtoMsg::InvAck { block: b, txn, count: 1000 }, 1, NodeId(6));
    assert_violation(&mut sys, "over-collected");
}

#[test]
fn completion_while_not_stalled_is_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let b = sys.geometry().block_of(addr_of_block(&sys, 3));
    // Node 9 never asked for anything; a stray read reply must not panic
    // or silently resume it.
    sys.debug_deliver(NodeId(9), ProtoMsg::ReadReply { block: b }, 0, NodeId(3));
    assert_violation(&mut sys, "not stalled");
}

#[test]
fn completion_for_wrong_block_is_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a1 = addr_of_block(&sys, 5);
    let b2 = sys.geometry().block_of(addr_of_block(&sys, 6));
    let reader = NodeId(10);
    // Stall the reader on block 5, then forge a reply for block 6: the
    // completion-vs-stall match must reject it.
    sys.issue(reader, MemOp::Read(a1));
    assert!(!sys.proc_idle(reader), "read miss should stall");
    sys.debug_deliver(reader, ProtoMsg::ReadReply { block: b2 }, 0, NodeId(6));
    assert_violation(&mut sys, "does not match its stall");
}

#[test]
fn write_grant_with_no_pending_write_is_caught() {
    let mut sys = system(4, SchemeKind::UiUa);
    let b = sys.geometry().block_of(addr_of_block(&sys, 7));
    sys.debug_deliver(NodeId(2), ProtoMsg::WriteGrant { block: b, with_data: true }, 0, NodeId(7));
    assert_violation(&mut sys, "no pending write");
}

#[test]
fn first_violation_is_sticky() {
    let mut sys = system(4, SchemeKind::UiUa);
    let b = sys.geometry().block_of(addr_of_block(&sys, 0));
    sys.debug_deliver(
        NodeId(0),
        ProtoMsg::InvAck { block: b, txn: TxnId(42), count: 1 },
        1,
        NodeId(5),
    );
    assert_violation(&mut sys, "dead transaction");
    // A second violation bumps the counter but must not displace the
    // structured report of the first.
    sys.debug_deliver(NodeId(9), ProtoMsg::ReadReply { block: b }, 0, NodeId(3));
    // `run_until_idle` refuses to continue a poisoned run, so step the
    // engine by hand to let the second delivery dispatch.
    for _ in 0..100 {
        sys.step();
    }
    assert_eq!(sys.metrics().invariant_failures, 2);
    let v = sys.invariant_violation().expect("violation still recorded");
    assert!(v.what.contains("dead transaction"), "first violation displaced: {:?}", v.what);
}

// ---------------------------------------------------------------------
// Dead-cycle fast-forward boundary behaviour (audit regression tests).
// ---------------------------------------------------------------------

#[test]
fn wakeup_at_next_cycle_is_never_skipped() {
    let mut sys = system(4, SchemeKind::UiUa);
    // BusyUntil(now + 1): the jump guard (`t > now + 1`) must not fire —
    // skipping here would land on the wake-up cycle itself.
    sys.issue(NodeId(0), MemOp::Compute(1));
    sys.run_until_idle(100).unwrap();
    assert_eq!(sys.skipped_cycles(), 0);
}

#[test]
fn two_cycle_sleep_skips_exactly_one() {
    let mut sys = system(4, SchemeKind::UiUa);
    // BusyUntil(now + 2): exactly one dead cycle exists between now and
    // the wake-up; the jump must stop at wake-up minus one.
    sys.issue(NodeId(0), MemOp::Compute(2));
    sys.run_until_idle(100).unwrap();
    assert_eq!(sys.skipped_cycles(), 1);
}

#[test]
fn fast_forward_is_bit_identical() {
    let run = |ff: bool| {
        let mut sys = system(4, SchemeKind::MiMaCol);
        sys.set_fast_forward(ff);
        let mesh = Mesh2D::square(4);
        let a = addr_of_block(&sys, 0);
        let b = sys.geometry().block_of(a);
        let sharers: Vec<NodeId> =
            [(1, 1), (2, 2), (3, 1)].iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
        sys.seed_shared(b, &sharers);
        sys.issue(mesh.node_at(3, 0), MemOp::Write(a));
        let end = sys.run_until_idle(200_000).unwrap();
        (end, sys.metrics().inval_txns, sys.metrics().inval_latency.sum(), sys.skipped_cycles())
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!((fast.0, fast.1, fast.2), (slow.0, slow.1, slow.2));
    assert!(fast.3 > 0, "fast-forward never engaged");
    assert_eq!(slow.3, 0);
}

#[test]
fn try_new_rejects_bad_configs_before_any_cycle() {
    // An over-provisioned VC config blows the router occupancy bitset:
    // rejected as SimError::Config with the mesh-level message, not a
    // panic deep inside Network::new.
    let mut cfg = SystemConfig::for_scheme(4, SchemeKind::UiUa);
    cfg.mesh.vcs_per_vnet = 64;
    let err = DsmSystem::try_new(cfg, SchemeKind::UiUa.build()).err().expect("must reject");
    let SimError::Config(msg) = err else { panic!("expected config error, got {err}") };
    assert!(msg.contains("occupancy bitset"), "{msg}");

    // Scheme/routing mismatch surfaces the same way.
    let mut cfg = SystemConfig::for_scheme(4, SchemeKind::MiUaWf);
    cfg.mesh.routing = wormdsm_mesh::routing::BaseRouting::ECube;
    let err = DsmSystem::try_new(cfg, SchemeKind::MiUaWf.build()).err().expect("must reject");
    let SimError::Config(msg) = err else { panic!("expected config error, got {err}") };
    assert!(msg.contains("not conformant"), "{msg}");

    // A valid config still constructs.
    let cfg = SystemConfig::for_scheme(4, SchemeKind::UiUa);
    assert!(DsmSystem::try_new(cfg, SchemeKind::UiUa.build()).is_ok());
}
