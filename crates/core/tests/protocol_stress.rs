//! Randomized protocol stress: arbitrary interleaved op streams across
//! all nodes and all schemes must (a) complete, (b) leave the machine in
//! a state satisfying the global coherence invariants (SWMR, shared
//! agreement, uncached purity, no transients).
//!
//! Op streams come from the workspace's deterministic [`Rng`] with fixed
//! seeds; the regression cases at the bottom are shrunken counterexamples
//! found by earlier property-test runs, kept as pinned deterministic
//! tests.

use wormdsm_coherence::Addr;
use wormdsm_core::{ConsistencyModel, DsmSystem, MemOp, SchemeKind, SystemConfig};
use wormdsm_mesh::topology::NodeId;
use wormdsm_sim::Rng;

/// A compact op encoding: (node, block, is_write).
fn op_stream(rng: &mut Rng) -> Vec<(u8, u8, bool)> {
    let n = rng.range(1, 119) as usize;
    (0..n).map(|_| (rng.index(16) as u8, rng.index(12) as u8, rng.chance(0.5))).collect()
}

#[allow(clippy::needless_range_loop)]
fn drive(sys: &mut DsmSystem, ops: &[(u8, u8, bool)]) {
    // Per-node queues; issue as processors free up (random interleaving
    // emerges from the protocol timing).
    let mut queues: Vec<std::collections::VecDeque<MemOp>> =
        (0..16).map(|_| std::collections::VecDeque::new()).collect();
    for &(n, b, w) in ops {
        let addr = Addr(b as u64 * 32);
        queues[n as usize].push_back(if w { MemOp::Write(addr) } else { MemOp::Read(addr) });
    }
    let mut guard = 0u64;
    loop {
        let mut pending = false;
        for n in 0..16 {
            if queues[n].is_empty() {
                continue;
            }
            pending = true;
            let node = NodeId(n as u16);
            if sys.proc_idle(node) {
                let op = queues[n].pop_front().expect("non-empty");
                sys.issue(node, op);
            }
        }
        if !pending && sys.idle() {
            return;
        }
        sys.step();
        guard += 1;
        assert!(guard < 5_000_000, "stress run did not converge");
    }
}

#[test]
fn random_ops_preserve_coherence_under_every_scheme() {
    let mut rng = Rng::new(0x57E5_0001);
    for _ in 0..24 {
        let ops = op_stream(&mut rng);
        check_all_schemes(&ops);
    }
}

fn check_all_schemes(ops: &[(u8, u8, bool)]) {
    for scheme in SchemeKind::ALL {
        let mut sys = DsmSystem::new(SystemConfig::for_scheme(4, scheme), scheme.build());
        drive(&mut sys, ops);
        sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn random_ops_preserve_coherence_under_release_consistency() {
    let mut rng = Rng::new(0x57E5_0002);
    for _ in 0..24 {
        let ops = op_stream(&mut rng);
        for scheme in [SchemeKind::UiUa, SchemeKind::MiMaCol, SchemeKind::MiMaWf] {
            let mut cfg = SystemConfig::for_scheme(4, scheme);
            cfg.consistency = ConsistencyModel::Release { write_buffer: 4 };
            let mut sys = DsmSystem::new(cfg, scheme.build());
            drive(&mut sys, &ops);
            sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}/RC: {e}"));
        }
    }
}

#[test]
fn random_ops_with_conflict_heavy_cache() {
    let mut rng = Rng::new(0x57E5_0003);
    for _ in 0..24 {
        let ops = op_stream(&mut rng);
        // One-set caches force an eviction/writeback storm alongside the
        // invalidation traffic.
        for scheme in [SchemeKind::UiUa, SchemeKind::MiMaTree, SchemeKind::MiMaTwoPhase] {
            let mut cfg = SystemConfig::for_scheme(4, scheme);
            cfg.cache_sets = 1;
            let mut sys = DsmSystem::new(cfg, scheme.build());
            drive(&mut sys, &ops);
            sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}/1-set: {e}"));
        }
    }
}

#[test]
fn verify_coherence_passes_after_known_scenarios() {
    // Deterministic end-to-end scenario exercising every directory state.
    let scheme = SchemeKind::MiMaCol;
    let mut sys = DsmSystem::new(SystemConfig::for_scheme(4, scheme), scheme.build());
    let a = Addr(7 * 32);
    for r in 0..8u16 {
        sys.issue(NodeId(r), MemOp::Read(a));
        sys.run_until_idle(100_000).unwrap();
    }
    sys.verify_coherence().unwrap();
    sys.issue(NodeId(12), MemOp::Write(a));
    sys.run_until_idle(100_000).unwrap();
    sys.verify_coherence().unwrap();
    sys.issue(NodeId(3), MemOp::Read(a));
    sys.run_until_idle(100_000).unwrap();
    sys.verify_coherence().unwrap();
}

// ---------------------------------------------------------------------
// Pinned regressions: shrunken counterexamples from earlier runs of the
// property tests above (formerly proptest-regressions).
// ---------------------------------------------------------------------

#[test]
fn regression_two_readers_then_remote_write() {
    check_all_schemes(&[(0, 0, false), (0, 0, false), (1, 5, false), (13, 5, true)]);
}

#[test]
fn regression_interleaved_mixed_29_ops() {
    check_all_schemes(&[
        (14, 11, true),
        (0, 1, false),
        (9, 8, true),
        (15, 4, true),
        (8, 1, false),
        (8, 3, false),
        (10, 3, true),
        (6, 0, false),
        (3, 7, false),
        (11, 5, true),
        (0, 10, true),
        (8, 5, false),
        (7, 4, true),
        (5, 6, true),
        (0, 2, true),
        (2, 2, false),
        (3, 0, true),
        (4, 2, true),
        (12, 11, false),
        (11, 11, true),
        (2, 1, false),
        (1, 6, true),
        (3, 3, true),
        (14, 5, true),
        (13, 7, true),
        (3, 1, false),
        (12, 2, true),
        (7, 7, true),
        (9, 11, false),
    ]);
}

#[test]
fn regression_write_heavy_85_ops() {
    check_all_schemes(&[
        (11, 2, false),
        (5, 9, false),
        (5, 0, true),
        (6, 1, true),
        (5, 8, true),
        (12, 7, true),
        (14, 3, true),
        (8, 7, false),
        (6, 6, true),
        (3, 7, true),
        (11, 7, true),
        (8, 6, false),
        (4, 11, false),
        (14, 7, false),
        (12, 9, true),
        (9, 11, false),
        (15, 7, false),
        (9, 1, true),
        (13, 8, true),
        (3, 9, false),
        (10, 9, false),
        (10, 4, true),
        (7, 5, false),
        (15, 0, false),
        (9, 2, true),
        (0, 11, true),
        (7, 9, true),
        (4, 6, true),
        (2, 5, true),
        (13, 10, false),
        (6, 3, false),
        (9, 6, true),
        (1, 0, false),
        (3, 0, false),
        (4, 8, false),
        (7, 8, false),
        (15, 3, false),
        (13, 5, false),
        (8, 10, false),
        (1, 3, true),
        (10, 4, false),
        (5, 9, true),
        (15, 6, true),
        (9, 3, true),
        (5, 0, true),
        (10, 7, true),
        (5, 8, false),
        (11, 3, true),
        (2, 4, false),
        (7, 9, true),
        (15, 10, false),
        (10, 4, true),
        (15, 11, false),
        (9, 8, true),
        (12, 6, false),
        (11, 5, true),
        (5, 2, true),
        (4, 6, false),
        (6, 2, false),
        (6, 3, true),
        (14, 1, false),
        (3, 6, false),
        (8, 4, false),
        (14, 0, false),
        (10, 7, false),
        (11, 3, false),
        (5, 7, true),
        (11, 9, false),
        (7, 3, false),
        (14, 0, true),
        (3, 0, false),
        (12, 0, false),
        (1, 10, true),
        (15, 2, false),
        (7, 6, false),
        (15, 11, false),
        (10, 7, true),
        (11, 1, true),
        (9, 1, false),
        (11, 0, false),
        (7, 9, true),
        (14, 1, false),
        (14, 1, false),
        (2, 3, false),
        (15, 1, false),
        (11, 7, true),
    ]);
}

#[test]
fn regression_mixed_19_ops() {
    check_all_schemes(&[
        (5, 6, true),
        (0, 0, false),
        (11, 8, true),
        (8, 10, false),
        (6, 1, true),
        (11, 5, false),
        (10, 6, true),
        (7, 5, false),
        (7, 8, true),
        (13, 11, true),
        (15, 7, true),
        (9, 3, true),
        (5, 8, true),
        (12, 6, true),
        (10, 0, false),
        (9, 10, true),
        (10, 3, true),
        (4, 6, false),
        (9, 3, true),
    ]);
}
