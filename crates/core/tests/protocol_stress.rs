//! Randomized protocol stress: arbitrary interleaved op streams across
//! all nodes and all schemes must (a) complete, (b) leave the machine in
//! a state satisfying the global coherence invariants (SWMR, shared
//! agreement, uncached purity, no transients).

use proptest::prelude::*;
use wormdsm_coherence::Addr;
use wormdsm_core::{ConsistencyModel, DsmSystem, MemOp, SchemeKind, SystemConfig};
use wormdsm_mesh::topology::NodeId;

/// A compact op encoding: (node, block, is_write).
fn op_stream() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    proptest::collection::vec((0u8..16, 0u8..12, any::<bool>()), 1..120)
}

#[allow(clippy::needless_range_loop)]
fn drive(sys: &mut DsmSystem, ops: &[(u8, u8, bool)]) {
    // Per-node queues; issue as processors free up (random interleaving
    // emerges from the protocol timing).
    let mut queues: Vec<std::collections::VecDeque<MemOp>> =
        (0..16).map(|_| std::collections::VecDeque::new()).collect();
    for &(n, b, w) in ops {
        let addr = Addr(b as u64 * 32);
        queues[n as usize].push_back(if w { MemOp::Write(addr) } else { MemOp::Read(addr) });
    }
    let mut guard = 0u64;
    loop {
        let mut pending = false;
        for n in 0..16 {
            if queues[n].is_empty() {
                continue;
            }
            pending = true;
            let node = NodeId(n as u16);
            if sys.proc_idle(node) {
                let op = queues[n].pop_front().expect("non-empty");
                sys.issue(node, op);
            }
        }
        if !pending && sys.idle() {
            return;
        }
        sys.step();
        guard += 1;
        assert!(guard < 5_000_000, "stress run did not converge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_ops_preserve_coherence_under_every_scheme(ops in op_stream()) {
        for scheme in SchemeKind::ALL {
            let mut sys = DsmSystem::new(SystemConfig::for_scheme(4, scheme), scheme.build());
            drive(&mut sys, &ops);
            sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn random_ops_preserve_coherence_under_release_consistency(ops in op_stream()) {
        for scheme in [SchemeKind::UiUa, SchemeKind::MiMaCol, SchemeKind::MiMaWf] {
            let mut cfg = SystemConfig::for_scheme(4, scheme);
            cfg.consistency = ConsistencyModel::Release { write_buffer: 4 };
            let mut sys = DsmSystem::new(cfg, scheme.build());
            drive(&mut sys, &ops);
            sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}/RC: {e}"));
        }
    }

    #[test]
    fn random_ops_with_conflict_heavy_cache(ops in op_stream()) {
        // One-set caches force an eviction/writeback storm alongside the
        // invalidation traffic.
        for scheme in [SchemeKind::UiUa, SchemeKind::MiMaTree, SchemeKind::MiMaTwoPhase] {
            let mut cfg = SystemConfig::for_scheme(4, scheme);
            cfg.cache_sets = 1;
            let mut sys = DsmSystem::new(cfg, scheme.build());
            drive(&mut sys, &ops);
            sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}/1-set: {e}"));
        }
    }
}

#[test]
fn verify_coherence_passes_after_known_scenarios() {
    // Deterministic end-to-end scenario exercising every directory state.
    let scheme = SchemeKind::MiMaCol;
    let mut sys = DsmSystem::new(SystemConfig::for_scheme(4, scheme), scheme.build());
    let a = Addr(7 * 32);
    for r in 0..8u16 {
        sys.issue(NodeId(r), MemOp::Read(a));
        sys.run_until_idle(100_000).unwrap();
    }
    sys.verify_coherence().unwrap();
    sys.issue(NodeId(12), MemOp::Write(a));
    sys.run_until_idle(100_000).unwrap();
    sys.verify_coherence().unwrap();
    sys.issue(NodeId(3), MemOp::Read(a));
    sys.run_until_idle(100_000).unwrap();
    sys.verify_coherence().unwrap();
}
