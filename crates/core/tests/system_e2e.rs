//! End-to-end protocol tests: full invalidation transactions under every
//! scheme, read/write miss paths, ownership transfer, queuing, sync
//! services, and determinism.

use wormdsm_coherence::{Addr, DirState, LineState};
use wormdsm_core::{ConsistencyModel, DsmSystem, MemOp, SchemeKind, SystemConfig};
use wormdsm_mesh::topology::{Mesh2D, NodeId};

fn system(k: usize, scheme: SchemeKind) -> DsmSystem {
    DsmSystem::new(SystemConfig::for_scheme(k, scheme), scheme.build())
}

/// Block 0's home is node 0; use block ids directly via addresses.
fn addr_of_block(sys: &DsmSystem, b: u64) -> Addr {
    Addr(b * sys.config().block_bytes)
}

#[test]
fn read_miss_installs_shared_copy() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 5); // home = node 5
    let reader = NodeId(10);
    sys.issue(reader, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    let b = sys.geometry().block_of(a);
    assert_eq!(sys.cache_state(reader, b), Some(LineState::Shared));
    assert_eq!(sys.dir_state(b), DirState::Shared);
    assert_eq!(sys.metrics().read_misses, 1);
    let lat = sys.metrics().read_latency.mean();
    // Clean remote read miss: request + DRAM + 40-flit data reply. Must
    // land in the DASH-era few-hundred-ns range (paper Table 4/5 scale).
    assert!(lat > 50.0 && lat < 400.0, "read miss latency {lat} cycles");
}

#[test]
fn local_read_miss_skips_network() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 3);
    let reader = NodeId(3); // reader == home
    sys.issue(reader, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.net_stats().flit_hops, 0, "local miss must not touch the network");
    let b = sys.geometry().block_of(a);
    assert_eq!(sys.cache_state(reader, b), Some(LineState::Shared));
}

#[test]
fn write_to_uncached_gets_exclusive() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 7);
    let writer = NodeId(2);
    sys.issue(writer, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    let b = sys.geometry().block_of(a);
    assert_eq!(sys.cache_state(writer, b), Some(LineState::Modified));
    assert_eq!(sys.dir_state(b), DirState::Exclusive(writer));
    assert_eq!(sys.metrics().inval_txns, 0, "no sharers, no invalidation");
    // Subsequent write hits.
    sys.issue(writer, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.metrics().write_hits, 1);
}

/// The core cross-scheme test: seed a scattered sharer set, write, and
/// verify the invalidation transaction end-to-end.
fn run_invalidation(scheme: SchemeKind, k: usize, sharer_xy: &[(usize, usize)]) -> DsmSystem {
    let mut sys = system(k, scheme);
    let mesh = Mesh2D::square(k);
    let a = addr_of_block(&sys, 0); // home = node 0 at (0,0)
    let b = sys.geometry().block_of(a);
    let sharers: Vec<NodeId> = sharer_xy.iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
    sys.seed_shared(b, &sharers);
    let writer = mesh.node_at(k - 1, 0);
    assert!(!sharers.contains(&writer));
    sys.issue(writer, MemOp::Write(a));
    sys.run_until_idle(200_000).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    for &s in &sharers {
        assert_eq!(sys.cache_state(s, b), None, "{scheme}: {s} still cached");
    }
    assert_eq!(sys.cache_state(writer, b), Some(LineState::Modified), "{scheme}");
    assert_eq!(sys.dir_state(b), DirState::Exclusive(writer), "{scheme}");
    assert_eq!(sys.metrics().inval_txns, 1, "{scheme}");
    assert_eq!(sys.metrics().inval_set_size.summary().mean(), sharers.len() as f64);
    sys
}

const SCATTER: [(usize, usize); 6] = [(1, 2), (1, 5), (3, 1), (3, 3), (5, 6), (6, 2)];

#[test]
fn invalidation_ui_ua() {
    let sys = run_invalidation(SchemeKind::UiUa, 8, &SCATTER);
    // 1 write req + 6 invals sent + 6 acks + 1 grant = 14.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 14.0);
}

#[test]
fn invalidation_mi_ua_col() {
    let sys = run_invalidation(SchemeKind::MiUaCol, 8, &SCATTER);
    // 4 column worms instead of 6 unicasts: 1 + 4 + 6 + 1 = 12.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 12.0);
}

#[test]
fn invalidation_mi_ma_col() {
    let sys = run_invalidation(SchemeKind::MiMaCol, 8, &SCATTER);
    // 4 worms out, 4 gathers in: 1 + 4 + 4 + 1 = 10.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 10.0);
}

#[test]
fn invalidation_mi_ma_tree() {
    let sys = run_invalidation(SchemeKind::MiMaTree, 8, &SCATTER);
    // Home sends 1 east relay (all sharer columns are east of home at
    // (0,0)); receives 4 gathers: 1 + 1 + 4 + 1 = 7.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 7.0);
}

#[test]
fn invalidation_mi_ma_two_phase() {
    let sys = run_invalidation(SchemeKind::MiMaTwoPhase, 8, &SCATTER);
    // Home at (0,0): all four groups are south side. Row assignment gives
    // a trigger (row 6), two deposits (rows 2, 1) and one group that runs
    // into the home row and degrades to a direct gather:
    // 1 req + 4 sends + (1 sweep + 1 direct) + 1 grant = 8.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 8.0);
    assert!(sys.net_stats().deposits > 0, "two-phase must use i-ack deposits");
}

#[test]
fn invalidation_mi_ua_wf() {
    let sys = run_invalidation(SchemeKind::MiUaWf, 8, &SCATTER);
    // One serpentine worm out, d unicast acks: 1 + 1 + 6 + 1 = 9.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 9.0);
}

#[test]
fn invalidation_mi_ma_wf() {
    let sys = run_invalidation(SchemeKind::MiMaWf, 8, &SCATTER);
    // One serpentine out; ack side as MI-MA(2ph): sweep + one degraded
    // direct gather: 1 + 1 + 2 + 1 = 5.
    assert_eq!(sys.metrics().inval_home_msgs.mean(), 5.0);
}

#[test]
fn home_message_count_ordering_matches_paper() {
    // The paper's occupancy argument: UI-UA > MI-UA > MI-MA in home
    // message involvement.
    let ui = run_invalidation(SchemeKind::UiUa, 8, &SCATTER).metrics().inval_home_msgs.mean();
    let mi_ua = run_invalidation(SchemeKind::MiUaCol, 8, &SCATTER).metrics().inval_home_msgs.mean();
    let mi_ma = run_invalidation(SchemeKind::MiMaCol, 8, &SCATTER).metrics().inval_home_msgs.mean();
    let two_ph =
        run_invalidation(SchemeKind::MiMaTwoPhase, 8, &SCATTER).metrics().inval_home_msgs.mean();
    let wf = run_invalidation(SchemeKind::MiMaWf, 8, &SCATTER).metrics().inval_home_msgs.mean();
    assert!(
        ui > mi_ua && mi_ua > mi_ma && mi_ma >= two_ph && two_ph >= wf,
        "{ui} {mi_ua} {mi_ma} {two_ph} {wf}"
    );
}

#[test]
fn every_scheme_handles_every_sharer_count() {
    // Sweep d = 1..=10 on an 8x8 mesh with a deterministic scatter.
    let mesh = Mesh2D::square(8);
    let all: Vec<(usize, usize)> =
        vec![(1, 2), (1, 5), (3, 1), (3, 3), (5, 6), (6, 2), (2, 7), (7, 4), (4, 4), (0, 6)];
    for scheme in SchemeKind::ALL {
        for d in 1..=all.len() {
            let mut sys = system(8, scheme);
            let a = addr_of_block(&sys, 0);
            let b = sys.geometry().block_of(a);
            let sharers: Vec<NodeId> = all[..d].iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
            sys.seed_shared(b, &sharers);
            let writer = mesh.node_at(7, 0);
            sys.issue(writer, MemOp::Write(a));
            sys.run_until_idle(200_000).unwrap_or_else(|e| panic!("{scheme} d={d}: {e}"));
            assert_eq!(sys.metrics().inval_txns, 1, "{scheme} d={d}");
            for &s in &sharers {
                assert_eq!(sys.cache_state(s, b), None, "{scheme} d={d} at {s}");
            }
        }
    }
}

#[test]
fn dirty_read_miss_fetches_from_owner() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 9);
    let b = sys.geometry().block_of(a);
    let (owner, reader) = (NodeId(2), NodeId(14));
    sys.issue(owner, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    sys.issue(reader, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.cache_state(reader, b), Some(LineState::Shared));
    assert_eq!(sys.cache_state(owner, b), Some(LineState::Shared), "owner downgraded");
    assert_eq!(sys.dir_state(b), DirState::Shared);
}

#[test]
fn dirty_write_miss_transfers_ownership() {
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 9);
    let b = sys.geometry().block_of(a);
    let (w1, w2) = (NodeId(2), NodeId(14));
    sys.issue(w1, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    sys.issue(w2, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.cache_state(w1, b), None, "old owner invalidated");
    assert_eq!(sys.cache_state(w2, b), Some(LineState::Modified));
    assert_eq!(sys.dir_state(b), DirState::Exclusive(w2));
}

#[test]
fn upgrade_after_read_uses_invalidation() {
    let mut sys = system(4, SchemeKind::MiMaCol);
    let a = addr_of_block(&sys, 6);
    let b = sys.geometry().block_of(a);
    let (r1, r2) = (NodeId(9), NodeId(10));
    sys.issue(r1, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    sys.issue(r2, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    // r1 upgrades; r2 must be invalidated.
    sys.issue(r1, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.cache_state(r1, b), Some(LineState::Modified));
    assert_eq!(sys.cache_state(r2, b), None);
    assert_eq!(sys.metrics().inval_txns, 1);
}

#[test]
fn concurrent_writers_serialize_through_waiting_state() {
    let mut sys = system(4, SchemeKind::MiMaCol);
    let a = addr_of_block(&sys, 0);
    let b = sys.geometry().block_of(a);
    let mesh = Mesh2D::square(4);
    let sharers: Vec<NodeId> = vec![mesh.node_at(1, 1), mesh.node_at(2, 2)];
    sys.seed_shared(b, &sharers);
    let (w1, w2) = (mesh.node_at(3, 0), mesh.node_at(0, 3));
    // Both issue in the same cycle: the loser queues at the home.
    sys.issue(w1, MemOp::Write(a));
    sys.issue(w2, MemOp::Write(a));
    sys.run_until_idle(200_000).unwrap();
    // Exactly one of them holds the block; both writes completed.
    let final_owner = match sys.dir_state(b) {
        DirState::Exclusive(n) => n,
        s => panic!("unexpected state {s:?}"),
    };
    assert!(final_owner == w1 || final_owner == w2);
    assert_eq!(sys.cache_state(final_owner, b), Some(LineState::Modified));
    let loser = if final_owner == w1 { w2 } else { w1 };
    assert_eq!(sys.cache_state(loser, b), None, "loser's copy invalidated by the second txn");
    assert_eq!(sys.metrics().write_misses, 2);
}

#[test]
fn barrier_releases_all_participants() {
    let mut sys = system(4, SchemeKind::UiUa);
    let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
    for &n in &nodes {
        sys.issue(n, MemOp::Barrier { id: 3, participants: 16 });
    }
    sys.run_until_idle(100_000).unwrap();
    assert_eq!(sys.metrics().barriers, 1);
    for &n in &nodes {
        assert!(sys.proc_idle(n));
    }
}

#[test]
fn lock_grants_are_exclusive_and_fair() {
    let mut sys = system(4, SchemeKind::UiUa);
    sys.issue(NodeId(1), MemOp::Lock(5));
    sys.issue(NodeId(2), MemOp::Lock(5));
    sys.run_until_idle(100_000).unwrap_err(); // NodeId(2) still stalled
    assert!(sys.proc_idle(NodeId(1)));
    assert!(!sys.proc_idle(NodeId(2)));
    sys.issue(NodeId(1), MemOp::Unlock(5));
    sys.run_until_idle(100_000).unwrap();
    assert!(sys.proc_idle(NodeId(2)));
}

#[test]
fn dirty_eviction_writes_back() {
    let mut sys = system(4, SchemeKind::UiUa);
    // Two blocks mapping to the same cache set: sets * block_bytes apart.
    let sets = sys.config().cache_sets as u64;
    let a1 = addr_of_block(&sys, 1);
    let a2 = addr_of_block(&sys, 1 + sets);
    let n = NodeId(6);
    sys.issue(n, MemOp::Write(a1));
    sys.run_until_idle(50_000).unwrap();
    sys.issue(n, MemOp::Write(a2));
    sys.run_until_idle(50_000).unwrap();
    let b1 = sys.geometry().block_of(a1);
    assert_eq!(sys.metrics().writebacks, 1);
    assert_eq!(sys.dir_state(b1), DirState::Uncached, "written back to memory");
    assert_eq!(sys.cache_state(n, b1), None);
}

#[test]
fn compute_op_just_burns_cycles() {
    let mut sys = system(4, SchemeKind::UiUa);
    sys.issue(NodeId(0), MemOp::Compute(100));
    assert!(!sys.proc_idle(NodeId(0)));
    sys.run_cycles(99);
    assert!(!sys.proc_idle(NodeId(0)));
    sys.run_cycles(2);
    assert!(sys.proc_idle(NodeId(0)));
}

#[test]
fn write_latency_reflects_invalidation_cost() {
    // The SC write stall must exceed the invalidation latency the home
    // observed (the write also pays request + grant travel).
    let sys = run_invalidation(SchemeKind::UiUa, 8, &SCATTER);
    let wl = sys.metrics().write_latency.mean();
    let il = sys.metrics().inval_latency.mean();
    assert!(wl > il, "write latency {wl} <= inval latency {il}");
}

#[test]
fn deterministic_across_runs() {
    let run = |scheme: SchemeKind| {
        let sys = run_invalidation(scheme, 8, &SCATTER);
        (sys.now(), sys.metrics().inval_latency.mean(), sys.net_stats().flit_hops)
    };
    for scheme in SchemeKind::ALL {
        assert_eq!(run(scheme), run(scheme), "{scheme}");
    }
}

#[test]
fn spurious_invalidation_still_acked() {
    // A sharer silently evicts (clean) before the invalidation arrives;
    // the protocol must still collect d acks.
    let mut sys = system(4, SchemeKind::UiUa);
    let a = addr_of_block(&sys, 2);
    let b = sys.geometry().block_of(a);
    let sets = sys.config().cache_sets as u64;
    let s = NodeId(9);
    sys.issue(s, MemOp::Read(a));
    sys.run_until_idle(50_000).unwrap();
    // Conflict-evict the clean line (same set).
    let a_conflict = addr_of_block(&sys, 2 + sets);
    sys.issue(s, MemOp::Read(a_conflict));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.cache_state(s, b), None);
    // Directory still thinks s shares the block; write triggers an inval.
    let w = NodeId(4);
    sys.issue(w, MemOp::Write(a));
    sys.run_until_idle(50_000).unwrap();
    assert_eq!(sys.metrics().inval_txns, 1);
    assert_eq!(sys.metrics().spurious_invals, 1);
    assert_eq!(sys.dir_state(b), DirState::Exclusive(w));
}

// ---------------------------------------------------------------------
// Release consistency and multicast barriers.
// ---------------------------------------------------------------------

fn rc_system(k: usize, scheme: SchemeKind, write_buffer: usize) -> DsmSystem {
    let mut cfg = SystemConfig::for_scheme(k, scheme);
    cfg.consistency = ConsistencyModel::Release { write_buffer };
    DsmSystem::new(cfg, scheme.build())
}

#[test]
fn rc_writes_do_not_stall_the_processor() {
    let mut sys = rc_system(4, SchemeKind::UiUa, 8);
    let n = NodeId(0);
    // Two write misses to different blocks issue back to back: under RC
    // the processor is busy only for the cache access, not the miss.
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 5)));
    sys.run_cycles(4);
    assert!(sys.proc_idle(n), "RC write must not block");
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 9)));
    sys.run_until_idle(100_000).unwrap();
    assert_eq!(sys.metrics().write_misses, 2);
    // Both lines arrived Modified.
    assert_eq!(
        sys.cache_state(n, sys.geometry().block_of(addr_of_block(&sys, 5))),
        Some(LineState::Modified)
    );
    assert_eq!(
        sys.cache_state(n, sys.geometry().block_of(addr_of_block(&sys, 9))),
        Some(LineState::Modified)
    );
}

#[test]
fn rc_same_block_write_defers() {
    let mut sys = rc_system(4, SchemeKind::UiUa, 8);
    let n = NodeId(0);
    let a = addr_of_block(&sys, 5);
    sys.issue(n, MemOp::Write(a));
    sys.run_cycles(4);
    assert!(sys.proc_idle(n));
    // Second access to the same in-flight block defers.
    sys.issue(n, MemOp::Read(a));
    sys.run_cycles(4);
    assert!(!sys.proc_idle(n), "same-block access must wait for the pending write");
    sys.run_until_idle(100_000).unwrap();
    assert_eq!(sys.metrics().read_hits, 1, "deferred read hits after the write retires");
}

#[test]
fn rc_write_buffer_fills_and_drains() {
    let mut sys = rc_system(4, SchemeKind::UiUa, 2);
    let n = NodeId(0);
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 1)));
    sys.run_cycles(4);
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 2)));
    sys.run_cycles(4);
    // Third write: buffer (depth 2) is full.
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 6)));
    sys.run_cycles(4);
    assert!(!sys.proc_idle(n), "write buffer full must stall");
    sys.run_until_idle(100_000).unwrap();
    assert_eq!(sys.metrics().write_misses, 3);
}

#[test]
fn rc_release_drains_write_buffer() {
    let mut sys = rc_system(4, SchemeKind::UiUa, 8);
    let n = NodeId(2);
    sys.issue(n, MemOp::Lock(3));
    sys.run_until_idle(100_000).unwrap();
    assert!(sys.proc_idle(n));
    // Write in flight, then a release: the unlock must defer until the
    // write retires.
    sys.issue(n, MemOp::Write(addr_of_block(&sys, 9)));
    sys.run_cycles(4);
    assert!(sys.proc_idle(n), "RC write retired into the buffer");
    sys.issue(n, MemOp::Unlock(3));
    sys.run_cycles(4);
    assert!(!sys.proc_idle(n), "release fence defers behind the pending write");
    sys.run_until_idle(100_000).unwrap();
    // Lock is free again afterwards.
    sys.issue(NodeId(5), MemOp::Lock(3));
    sys.run_until_idle(100_000).unwrap();
    assert!(sys.proc_idle(NodeId(5)));
}

#[test]
fn rc_overlapped_writes_reduce_stall_cycles() {
    // Same invalidation-heavy pattern under SC vs RC: RC must show less
    // processor stall time.
    let run = |rc: bool| {
        let scheme = SchemeKind::UiUa;
        let mut cfg = SystemConfig::for_scheme(8, scheme);
        if rc {
            cfg.consistency = ConsistencyModel::Release { write_buffer: 8 };
        }
        let mut sys = DsmSystem::new(cfg, scheme.build());
        let n = NodeId(0);
        for b in [70u64, 75, 81, 86] {
            sys.issue(n, MemOp::Write(Addr(b * 32)));
            while !sys.proc_idle(n) {
                sys.step();
            }
        }
        sys.run_until_idle(200_000).unwrap();
        sys.metrics().stall_cycles
    };
    let sc = run(false);
    let rc = run(true);
    assert!(rc < sc, "RC stall {rc} should be far below SC stall {sc}");
}

#[test]
fn multicast_barrier_releases_everyone_with_fewer_home_sends() {
    for scheme in [SchemeKind::UiUa, SchemeKind::MiMaCol] {
        let mut cfg = SystemConfig::for_scheme(4, scheme);
        cfg.multicast_barriers = true;
        let mut sys = DsmSystem::new(cfg, scheme.build());
        for p in 0..16u16 {
            sys.issue(NodeId(p), MemOp::Barrier { id: 3, participants: 16 });
        }
        sys.run_until_idle(100_000).unwrap();
        assert_eq!(sys.metrics().barriers, 1, "{scheme}");
        for p in 0..16u16 {
            assert!(sys.proc_idle(NodeId(p)), "{scheme}: node {p} released");
        }
        // Release worms: at most 2 per row (4 rows on a 4x4) + local,
        // versus 16 unicasts.
        let reply_worms = sys.net_stats().worms_injected[1];
        assert!(reply_worms <= 8, "{scheme}: {reply_worms} release worms");
    }
}

#[test]
fn writeback_fetch_race_scan() {
    // Sweep the interleaving between a dirty eviction's writeback and a
    // competing write request over a range of issue offsets. Some offsets
    // make the fetch race the writeback (home in Waiting when the
    // writeback lands); the home must defer the writeback rather than
    // ack-and-drop it, or the fetch spins forever at a node with no data.
    for offset in (0..200).step_by(7) {
        let scheme = SchemeKind::UiUa;
        let mut cfg = SystemConfig::for_scheme(4, scheme);
        cfg.cache_sets = 1; // every block conflicts: writes force evictions
        let mut sys = DsmSystem::new(cfg, scheme.build());
        let (o, w2) = (NodeId(5), NodeId(10));
        let a = addr_of_block(&sys, 3);
        let b = addr_of_block(&sys, 7);
        sys.issue(o, MemOp::Write(a));
        sys.run_until_idle(100_000).unwrap();
        // Evicting write and competing write, offset cycles apart.
        sys.issue(o, MemOp::Write(b));
        sys.run_cycles(offset);
        sys.issue(w2, MemOp::Write(a));
        sys.run_until_idle(500_000).unwrap_or_else(|e| panic!("offset {offset}: {e}"));
        let blk = sys.geometry().block_of(a);
        assert_eq!(sys.cache_state(w2, blk), Some(LineState::Modified), "offset {offset}");
    }
}

#[test]
fn rectangular_mesh_works_end_to_end() {
    // The paper uses square k x k meshes; the model supports rectangles.
    use wormdsm_mesh::network::MeshConfig;
    for scheme in [SchemeKind::UiUa, SchemeKind::MiMaCol, SchemeKind::MiMaWf] {
        let mut cfg = SystemConfig::for_scheme(4, scheme);
        cfg.mesh = MeshConfig { mesh: Mesh2D::new(8, 4), ..cfg.mesh };
        cfg.mesh.routing = scheme.natural_routing();
        let mut sys = DsmSystem::new(cfg, scheme.build());
        let mesh = Mesh2D::new(8, 4);
        let a = addr_of_block(&sys, 0);
        let b = sys.geometry().block_of(a);
        let sharers: Vec<NodeId> =
            [(1, 1), (3, 2), (6, 1), (6, 3)].iter().map(|&(x, y)| mesh.node_at(x, y)).collect();
        sys.seed_shared(b, &sharers);
        sys.issue(mesh.node_at(7, 0), MemOp::Write(a));
        sys.run_until_idle(200_000).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(sys.metrics().inval_txns, 1, "{scheme}");
        sys.verify_coherence().unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}
