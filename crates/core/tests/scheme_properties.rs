//! Randomized property tests over the scheme geometry: for arbitrary
//! sharer sets on arbitrary meshes, every scheme must produce structurally
//! valid, base-routing-conformant plans that cover the sharer set exactly.
//!
//! Scenarios are generated from the workspace's deterministic [`Rng`]
//! with fixed seeds, so every run exercises the same cases.

use std::collections::HashSet;
use wormdsm_core::plan::{validate_plan, AckAction, InvalPlan};
use wormdsm_core::schemes::{InvalidationScheme, SchemeKind};
use wormdsm_mesh::routing::{is_conformant, PathRule};
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_sim::Rng;

/// A mesh size, a home node, and a distinct sharer set excluding the home.
fn scenario(rng: &mut Rng) -> Option<(usize, u16, Vec<u16>)> {
    let k = rng.range(4, 12) as usize;
    let n = (k * k) as u16;
    let home = rng.below(n as u64) as u16;
    let want = rng.range(1, (n as u64 - 2).min(40)) as usize;
    let sharers: Vec<u16> = rng
        .sample_distinct(n as usize, want)
        .into_iter()
        .map(|s| s as u16)
        .filter(|&s| s != home)
        .collect();
    if sharers.is_empty() {
        None
    } else {
        Some((k, home, sharers))
    }
}

/// Check every worm path in a plan for conformance.
fn check_plan_conformance(
    scheme: &dyn InvalidationScheme,
    mesh: &Mesh2D,
    home: NodeId,
    plan: &InvalPlan,
) {
    let req_rule = scheme.kind().natural_routing().request_rule();
    for w in &plan.request_worms {
        assert_conf(req_rule, mesh, home, &w.dests);
    }
    for (delegate, worms) in &plan.relays {
        for w in worms {
            assert_conf(req_rule, mesh, *delegate, &w.dests);
        }
    }
    for (init, a) in &plan.actions {
        if let AckAction::InitGather(w) = a {
            assert_conf(PathRule::YX, mesh, *init, &w.dests);
        }
    }
    for (node, w) in &plan.triggers {
        assert_conf(PathRule::YX, mesh, *node, &w.dests);
    }
}

fn assert_conf(rule: PathRule, mesh: &Mesh2D, src: NodeId, dests: &[NodeId]) {
    assert!(
        is_conformant(rule, mesh, src, dests),
        "non-conformant {rule:?} path: src {src} dests {dests:?}"
    );
}

/// Delivering destinations across request + relay worms must equal the
/// sharer set exactly (every sharer invalidated exactly once), modulo the
/// tree scheme's delegate-local invalidations.
fn check_coverage(scheme: SchemeKind, plan: &InvalPlan, sharers: &[NodeId]) {
    let mut delivered: Vec<NodeId> = Vec::new();
    for w in plan.request_worms.iter().filter(|w| !w.relay) {
        for (j, d) in w.dests.iter().enumerate() {
            if w.deliver.as_ref().is_none_or(|m| m[j]) {
                delivered.push(*d);
            }
        }
    }
    let mut relay_locals: HashSet<NodeId> = HashSet::new();
    for (delegate, worms) in &plan.relays {
        if plan.action_for(*delegate).is_some() {
            relay_locals.insert(*delegate);
        }
        for w in worms {
            for (j, d) in w.dests.iter().enumerate() {
                if w.deliver.as_ref().is_none_or(|m| m[j]) {
                    delivered.push(*d);
                }
            }
        }
    }
    let want: HashSet<NodeId> = sharers.iter().copied().collect();
    let got_set: HashSet<NodeId> =
        delivered.iter().copied().chain(relay_locals.iter().copied()).collect();
    assert_eq!(got_set, want, "{scheme}: delivered set mismatch");
    assert_eq!(
        delivered.len() + relay_locals.len(),
        sharers.len(),
        "{scheme}: sharer delivered more than once: {delivered:?}"
    );
}

/// Deposits and sweep intermediate stops must avoid sharer router
/// interfaces (i-ack entry collision freedom).
fn check_deposit_safety(plan: &InvalPlan, sharers: &[NodeId]) {
    let sharer_set: HashSet<NodeId> = sharers.iter().copied().collect();
    for (_, a) in &plan.actions {
        if let AckAction::InitGather(w) = a {
            if w.gather_deposit {
                let target = *w.dests.last().expect("non-empty");
                assert!(!sharer_set.contains(&target), "deposit on sharer {target}");
            }
        }
    }
    for (_, sweep) in &plan.triggers {
        for d in &sweep.dests[..sweep.dests.len() - 1] {
            assert!(!sharer_set.contains(d), "sweep stops at sharer {d}");
        }
    }
}

#[test]
fn all_schemes_produce_valid_conformant_plans() {
    let mut rng = Rng::new(0x9EA0_0001);
    for _ in 0..256 {
        let Some((k, home, sharers)) = scenario(&mut rng) else { continue };
        let mesh = Mesh2D::square(k);
        let home = NodeId(home);
        let sharers: Vec<NodeId> = sharers.into_iter().map(NodeId).collect();
        for scheme in SchemeKind::ALL {
            let s = scheme.build();
            let plan = s.plan(&mesh, home, &sharers);
            validate_plan(&plan, &sharers).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            check_plan_conformance(s.as_ref(), &mesh, home, &plan);
            check_coverage(scheme, &plan, &sharers);
            check_deposit_safety(&plan, &sharers);
        }
    }
}

#[test]
fn multidestination_schemes_never_send_more_than_ui_ua() {
    let mut rng = Rng::new(0x9EA0_0002);
    for _ in 0..256 {
        let Some((k, home, sharers)) = scenario(&mut rng) else { continue };
        let mesh = Mesh2D::square(k);
        let home = NodeId(home);
        let sharers: Vec<NodeId> = sharers.into_iter().map(NodeId).collect();
        let d = sharers.len();
        for scheme in SchemeKind::ALL {
            let plan = scheme.build().plan(&mesh, home, &sharers);
            assert!(plan.home_sends() <= d, "{scheme} sends {} > d = {d}", plan.home_sends());
        }
    }
}

/// DPM's greedy merge only ever accepts strictly improving steps, so the
/// closed-form cost of its merged partitions can never exceed the
/// unmerged column partitions it started from — on any mesh, for any
/// sharer set.
#[test]
fn dpm_merge_never_worse_than_column_partitions() {
    use wormdsm_core::schemes::grouping::column_groups;
    use wormdsm_core::schemes::{dpm_partitions, partition_plan_cost};
    let mut rng = Rng::new(0x9EA0_0004);
    for _ in 0..256 {
        let Some((k, home, sharers)) = scenario(&mut rng) else { continue };
        let mesh = Mesh2D::square(k);
        let home = NodeId(home);
        let sharers: Vec<NodeId> = sharers.into_iter().map(NodeId).collect();
        let initial: Vec<Vec<NodeId>> =
            column_groups(&mesh, home, &sharers).into_iter().map(|g| g.members).collect();
        let merged = dpm_partitions(&mesh, home, &sharers);
        let merged_cost = partition_plan_cost(&mesh, home, &merged);
        let initial_cost = partition_plan_cost(&mesh, home, &initial);
        assert!(
            merged_cost <= initial_cost,
            "DPM merge regressed {merged_cost} > {initial_cost} for home {home} \
             sharers {sharers:?} on {k}x{k}"
        );
        assert!(merged.len() <= initial.len(), "merging never adds partitions");
    }
}

/// The adaptive scheme must produce structurally valid, conformant,
/// exactly-covering plans under *any* load summary — congestion steers
/// the partitioning, never the legality.
#[test]
fn adaptive_plans_stay_valid_under_random_load() {
    use wormdsm_mesh::LinkLoadMeter;
    let mut rng = Rng::new(0x9EA0_0005);
    for _ in 0..128 {
        let Some((k, home, sharers)) = scenario(&mut rng) else { continue };
        let mesh = Mesh2D::square(k);
        let home = NodeId(home);
        let sharers: Vec<NodeId> = sharers.into_iter().map(NodeId).collect();
        // Synthetic committed window: every link uniformly loaded in
        // [0, window] busy cycles.
        let window = 64;
        let mut meter = LinkLoadMeter::new(mesh.nodes(), window);
        let busy: Vec<u64> = (0..mesh.nodes() * 4).map(|_| rng.below(window + 1)).collect();
        meter.observe(window, &busy);
        let scheme = SchemeKind::MiMaAdaptive.build();
        let plan = scheme.plan_with_load(&mesh, home, &sharers, Some(&meter));
        validate_plan(&plan, &sharers).unwrap_or_else(|e| panic!("loaded plan: {e}"));
        check_plan_conformance(scheme.as_ref(), &mesh, home, &plan);
        check_coverage(SchemeKind::MiMaAdaptive, &plan, &sharers);
        check_deposit_safety(&plan, &sharers);
        assert!(plan.home_sends() <= sharers.len(), "loaded plans keep home_sends <= d");
    }
}

#[test]
fn analytic_model_prices_every_plan() {
    let mut rng = Rng::new(0x9EA0_0003);
    for _ in 0..256 {
        let Some((k, home, sharers)) = scenario(&mut rng) else { continue };
        let mesh = Mesh2D::square(k);
        let home = NodeId(home);
        let sharers: Vec<NodeId> = sharers.into_iter().map(NodeId).collect();
        for scheme in SchemeKind::ALL {
            let s = scheme.build();
            let e = wormdsm_analytic::estimate_invalidation(
                &wormdsm_analytic::NetParams::default(),
                &mesh,
                scheme.natural_routing(),
                s.as_ref(),
                home,
                &sharers,
            );
            assert!(e.latency > 0.0);
            assert!(e.total_msgs >= 2, "{scheme}: at least one request and one ack path");
            assert!(e.home_recvs >= 1);
        }
    }
}
