//! Per-node processor cache: direct-mapped, write-back, MSI line states.

use crate::addr::BlockId;

/// Line state in a processor cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Valid read-only copy.
    Shared,
    /// Exclusive dirty copy (single writer).
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockId,
    state: LineState,
}

/// Result of inserting a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// The victim slot was free or held the same block.
    None,
    /// A clean (Shared) line was silently dropped.
    Clean(BlockId),
    /// A dirty (Modified) line must be written back.
    Dirty(BlockId),
}

/// A direct-mapped, write-back cache indexed by block id.
///
/// Direct mapping keeps conflict behaviour deterministic and matches the
/// simple SRAM caches of the paper's era; the set count is configurable so
/// experiments can vary pressure.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Option<Line>>,
}

impl Cache {
    /// Cache with `sets` direct-mapped slots (must be a power of two).
    pub fn new(sets: usize) -> Self {
        assert!(sets.is_power_of_two() && sets >= 1);
        Self { sets: vec![None; sets] }
    }

    /// Number of slots.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    fn slot(&self, b: BlockId) -> usize {
        (b.0 as usize) & (self.sets.len() - 1)
    }

    /// Current state of `b` if present.
    pub fn state(&self, b: BlockId) -> Option<LineState> {
        let l = self.sets[self.slot(b)]?;
        (l.block == b).then_some(l.state)
    }

    /// True if a read hits.
    pub fn read_hit(&self, b: BlockId) -> bool {
        self.state(b).is_some()
    }

    /// True if a write hits with write permission.
    pub fn write_hit(&self, b: BlockId) -> bool {
        self.state(b) == Some(LineState::Modified)
    }

    /// Non-mutating presence probe: the state of `b` without any lookup
    /// side effects, ever. `read_hit`/`write_hit` model processor accesses
    /// and may one day perturb replacement state; `probe` is the contract
    /// for protocol decisions (e.g. upgrade-vs-write-miss detection) that
    /// must merely *inspect* the cache.
    pub fn probe(&self, b: BlockId) -> Option<LineState> {
        let l = self.sets[self.slot(b)]?;
        (l.block == b).then_some(l.state)
    }

    /// Install `b` in `state`, returning what was evicted.
    pub fn insert(&mut self, b: BlockId, state: LineState) -> Evicted {
        let s = self.slot(b);
        let evicted = match self.sets[s] {
            None => Evicted::None,
            Some(l) if l.block == b => Evicted::None,
            Some(l) => match l.state {
                LineState::Shared => Evicted::Clean(l.block),
                LineState::Modified => Evicted::Dirty(l.block),
            },
        };
        self.sets[s] = Some(Line { block: b, state });
        evicted
    }

    /// Upgrade an existing Shared line to Modified. Returns false if the
    /// block is no longer present (it raced with an invalidation).
    pub fn upgrade(&mut self, b: BlockId) -> bool {
        let s = self.slot(b);
        match &mut self.sets[s] {
            Some(l) if l.block == b => {
                l.state = LineState::Modified;
                true
            }
            _ => false,
        }
    }

    /// Invalidate `b`. Returns the state it had, if present.
    pub fn invalidate(&mut self, b: BlockId) -> Option<LineState> {
        let s = self.slot(b);
        match self.sets[s] {
            Some(l) if l.block == b => {
                self.sets[s] = None;
                Some(l.state)
            }
            _ => None,
        }
    }

    /// Downgrade Modified -> Shared (sharing writeback). Returns false if
    /// absent.
    pub fn downgrade(&mut self, b: BlockId) -> bool {
        let s = self.slot(b);
        match &mut self.sets[s] {
            Some(l) if l.block == b => {
                l.state = LineState::Shared;
                true
            }
            _ => false,
        }
    }

    /// Count of valid lines (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|l| l.is_some()).count()
    }
}

mod snap_impls {
    use super::{Cache, Line, LineState};
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for LineState {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u8(match self {
                LineState::Shared => 0,
                LineState::Modified => 1,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.get_u8()? {
                0 => Ok(LineState::Shared),
                1 => Ok(LineState::Modified),
                t => Err(SnapError::Corrupt(format!("bad LineState tag {t}"))),
            }
        }
    }

    impl Snap for Line {
        fn save(&self, w: &mut SnapWriter) {
            self.block.save(w);
            self.state.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Line { block: Snap::load(r)?, state: Snap::load(r)? })
        }
    }

    impl Snap for Cache {
        fn save(&self, w: &mut SnapWriter) {
            self.sets.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let sets: Vec<Option<Line>> = Snap::load(r)?;
            if !sets.len().is_power_of_two() {
                return Err(SnapError::Corrupt(format!(
                    "cache set count {} is not a power of two",
                    sets.len()
                )));
            }
            Ok(Cache { sets })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(64);
        let b = BlockId(5);
        assert!(!c.read_hit(b));
        assert_eq!(c.insert(b, LineState::Shared), Evicted::None);
        assert!(c.read_hit(b));
        assert!(!c.write_hit(b));
        assert!(c.upgrade(b));
        assert!(c.write_hit(b));
    }

    #[test]
    fn conflict_eviction_clean_and_dirty() {
        let mut c = Cache::new(4);
        // Blocks 1 and 5 conflict (same slot mod 4).
        c.insert(BlockId(1), LineState::Shared);
        assert_eq!(c.insert(BlockId(5), LineState::Shared), Evicted::Clean(BlockId(1)));
        assert!(!c.read_hit(BlockId(1)));
        c.upgrade(BlockId(5));
        assert_eq!(c.insert(BlockId(9), LineState::Shared), Evicted::Dirty(BlockId(5)));
    }

    #[test]
    fn reinsert_same_block_is_not_eviction() {
        let mut c = Cache::new(4);
        c.insert(BlockId(1), LineState::Shared);
        assert_eq!(c.insert(BlockId(1), LineState::Modified), Evicted::None);
        assert_eq!(c.state(BlockId(1)), Some(LineState::Modified));
    }

    #[test]
    fn invalidate_returns_prior_state() {
        let mut c = Cache::new(4);
        c.insert(BlockId(2), LineState::Modified);
        assert_eq!(c.invalidate(BlockId(2)), Some(LineState::Modified));
        assert_eq!(c.invalidate(BlockId(2)), None);
        // Invalidating an absent block (spurious inval) is a no-op.
        assert_eq!(c.invalidate(BlockId(77)), None);
    }

    #[test]
    fn upgrade_fails_after_invalidation_race() {
        let mut c = Cache::new(4);
        c.insert(BlockId(2), LineState::Shared);
        c.invalidate(BlockId(2));
        assert!(!c.upgrade(BlockId(2)));
    }

    #[test]
    fn downgrade_modified_to_shared() {
        let mut c = Cache::new(4);
        c.insert(BlockId(3), LineState::Modified);
        assert!(c.downgrade(BlockId(3)));
        assert_eq!(c.state(BlockId(3)), Some(LineState::Shared));
        assert!(!c.downgrade(BlockId(9)));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = Cache::new(8);
        assert_eq!(c.occupancy(), 0);
        c.insert(BlockId(0), LineState::Shared);
        c.insert(BlockId(1), LineState::Shared);
        assert_eq!(c.occupancy(), 2);
    }
}
