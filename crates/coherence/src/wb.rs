//! Writeback buffer.
//!
//! A dirty line evicted from a cache sits in the node's writeback buffer
//! until the home acknowledges the writeback. A `Fetch` arriving for a
//! block in flight (the classic "window of vulnerability" \[23\]) is served
//! from this buffer instead of failing.

use crate::addr::BlockId;

/// Per-node writeback buffer: blocks with a `Writeback` in flight.
#[derive(Debug, Default, Clone)]
pub struct WbBuffer {
    pending: Vec<BlockId>,
}

impl WbBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `b`'s writeback left this node.
    pub fn insert(&mut self, b: BlockId) {
        debug_assert!(!self.contains(b), "duplicate writeback for {b}");
        self.pending.push(b);
    }

    /// True if `b`'s writeback is still unacknowledged.
    pub fn contains(&self, b: BlockId) -> bool {
        self.pending.contains(&b)
    }

    /// Home acknowledged `b`'s writeback; release the slot. Returns false
    /// if `b` was not pending (stale ack).
    pub fn release(&mut self, b: BlockId) -> bool {
        match self.pending.iter().position(|&x| x == b) {
            Some(i) => {
                self.pending.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Number of writebacks in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

mod snap_impls {
    use super::WbBuffer;
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for WbBuffer {
        fn save(&self, w: &mut SnapWriter) {
            self.pending.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(WbBuffer { pending: Snap::load(r)? })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_release() {
        let mut w = WbBuffer::new();
        assert!(w.is_empty());
        w.insert(BlockId(3));
        w.insert(BlockId(9));
        assert!(w.contains(BlockId(3)));
        assert_eq!(w.len(), 2);
        assert!(w.release(BlockId(3)));
        assert!(!w.contains(BlockId(3)));
        assert!(!w.release(BlockId(3)), "double release is reported");
        assert_eq!(w.len(), 1);
    }
}
