//! Protocol messages and the payload table.
//!
//! Worm payloads are opaque `u64` keys into a [`MsgTable`]; the protocol
//! layer allocates a message, injects a worm carrying its key, and decodes
//! the key on delivery. Multidestination invalidation worms deliver the
//! *same* message to every sharer; the per-sharer acknowledgement action is
//! looked up in the transaction table instead.

use crate::addr::BlockId;
use wormdsm_mesh::topology::NodeId;
use wormdsm_mesh::worm::TxnId;

/// Coherence protocol message types.
///
/// `Req`-network messages go home-ward or owner-ward; `Reply`-network
/// messages carry data, grants, and acknowledgements (the DASH-style
/// two-network split that breaks request/reply deadlock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Read miss: requester -> home. (Req net)
    ReadReq {
        /// Missing block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Data reply with read permission: home -> requester. (Reply net)
    ReadReply {
        /// The block.
        block: BlockId,
    },
    /// Write miss (no copy): requester -> home. (Req net)
    WriteReq {
        /// The block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Ownership upgrade (Shared copy held): requester -> home. (Req net)
    UpgradeReq {
        /// The block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Invalidation request: home -> sharer(s); carried by unicast worms
    /// (UI) or multidestination i-reserve worms (MI). (Req net)
    Inval {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Home node acks must reach.
        home: NodeId,
    },
    /// Unicast invalidation acknowledgement: sharer -> home. (Reply net)
    InvAck {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Number of acknowledgements this message carries (relays of
        /// deposit fallbacks may carry more than one).
        count: u32,
    },
    /// Relay instruction to a tree-scheme delegate: inject the column
    /// invalidation worms planned for this transaction. (Req net)
    RelayInval {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Home node.
        home: NodeId,
    },
    /// Terminates a first-level gather at the sweep-trigger node of the
    /// two-phase schemes: the receiving node injects the planned sweep
    /// gather, seeding it with this worm's ack count. (Reply net)
    SweepTrigger {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
    },
    /// Combined acknowledgement carried by an i-gather worm; the count
    /// rides in the worm itself. (Reply net)
    GatherAck {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
    },
    /// Write permission grant (with data when `with_data`): home ->
    /// writer. (Reply net)
    WriteGrant {
        /// The block.
        block: BlockId,
        /// Whether a data copy rides along (write miss vs upgrade).
        with_data: bool,
    },
    /// Fetch request for a dirty block: home -> owner; `for_write` asks
    /// the owner to invalidate (ownership transfer) rather than downgrade.
    /// (Req net)
    Fetch {
        /// The block.
        block: BlockId,
        /// Node that misses.
        requester: NodeId,
        /// Read miss (false) or write miss (true).
        for_write: bool,
    },
    /// Dirty data forwarded by the owner straight to the requester.
    /// (Reply net)
    OwnerData {
        /// The block.
        block: BlockId,
        /// True when ownership transferred (requester installs Modified).
        exclusive: bool,
    },
    /// Sharing/ownership writeback: owner -> home after a Fetch.
    /// (Reply net)
    FetchWb {
        /// The block.
        block: BlockId,
        /// The node the data was forwarded to.
        requester: NodeId,
        /// True when the owner invalidated (write fetch).
        was_write: bool,
    },
    /// Dirty eviction writeback: owner -> home. (Req net; it initiates a
    /// transaction.)
    Writeback {
        /// The block.
        block: BlockId,
        /// Evicting node.
        owner: NodeId,
    },
    /// Writeback acknowledgement: home -> evictor (releases the writeback
    /// buffer slot). (Reply net)
    WritebackAck {
        /// The block.
        block: BlockId,
    },
    /// Barrier arrival: participant -> barrier home. (Req net)
    BarrierArrive {
        /// Barrier identifier.
        barrier: u16,
        /// Number of arrivals that release the barrier.
        participants: u32,
    },
    /// Barrier release: barrier home -> participant. (Reply net)
    BarrierRelease {
        /// Barrier identifier.
        barrier: u16,
    },
    /// Lock request: node -> lock home. (Req net)
    LockReq {
        /// Lock identifier.
        lock: u16,
        /// Requesting node.
        requester: NodeId,
    },
    /// Lock grant: lock home -> holder. (Reply net)
    LockGrant {
        /// Lock identifier.
        lock: u16,
    },
    /// Lock release: holder -> lock home. (Req net)
    LockRelease {
        /// Lock identifier.
        lock: u16,
    },
}

impl ProtoMsg {
    /// True for messages that carry a data block.
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            ProtoMsg::ReadReply { .. }
                | ProtoMsg::OwnerData { .. }
                | ProtoMsg::FetchWb { .. }
                | ProtoMsg::Writeback { .. }
                | ProtoMsg::WriteGrant { with_data: true, .. }
        )
    }
}

/// Payload table mapping worm payload keys to protocol messages.
#[derive(Debug, Default)]
pub struct MsgTable {
    msgs: Vec<ProtoMsg>,
}

impl MsgTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a message, returning its payload key.
    pub fn push(&mut self, m: ProtoMsg) -> u64 {
        self.msgs.push(m);
        (self.msgs.len() - 1) as u64
    }

    /// Decode a payload key.
    pub fn get(&self, key: u64) -> ProtoMsg {
        self.msgs[key as usize]
    }

    /// Number of messages allocated so far.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if no messages were allocated.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

mod snap_impls {
    use super::{MsgTable, ProtoMsg};
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for ProtoMsg {
        fn save(&self, w: &mut SnapWriter) {
            match *self {
                ProtoMsg::ReadReq { block, requester } => {
                    w.put_u8(0);
                    block.save(w);
                    requester.save(w);
                }
                ProtoMsg::ReadReply { block } => {
                    w.put_u8(1);
                    block.save(w);
                }
                ProtoMsg::WriteReq { block, requester } => {
                    w.put_u8(2);
                    block.save(w);
                    requester.save(w);
                }
                ProtoMsg::UpgradeReq { block, requester } => {
                    w.put_u8(3);
                    block.save(w);
                    requester.save(w);
                }
                ProtoMsg::Inval { block, txn, home } => {
                    w.put_u8(4);
                    block.save(w);
                    txn.save(w);
                    home.save(w);
                }
                ProtoMsg::InvAck { block, txn, count } => {
                    w.put_u8(5);
                    block.save(w);
                    txn.save(w);
                    w.put_u32(count);
                }
                ProtoMsg::RelayInval { block, txn, home } => {
                    w.put_u8(6);
                    block.save(w);
                    txn.save(w);
                    home.save(w);
                }
                ProtoMsg::SweepTrigger { block, txn } => {
                    w.put_u8(7);
                    block.save(w);
                    txn.save(w);
                }
                ProtoMsg::GatherAck { block, txn } => {
                    w.put_u8(8);
                    block.save(w);
                    txn.save(w);
                }
                ProtoMsg::WriteGrant { block, with_data } => {
                    w.put_u8(9);
                    block.save(w);
                    w.put_bool(with_data);
                }
                ProtoMsg::Fetch { block, requester, for_write } => {
                    w.put_u8(10);
                    block.save(w);
                    requester.save(w);
                    w.put_bool(for_write);
                }
                ProtoMsg::OwnerData { block, exclusive } => {
                    w.put_u8(11);
                    block.save(w);
                    w.put_bool(exclusive);
                }
                ProtoMsg::FetchWb { block, requester, was_write } => {
                    w.put_u8(12);
                    block.save(w);
                    requester.save(w);
                    w.put_bool(was_write);
                }
                ProtoMsg::Writeback { block, owner } => {
                    w.put_u8(13);
                    block.save(w);
                    owner.save(w);
                }
                ProtoMsg::WritebackAck { block } => {
                    w.put_u8(14);
                    block.save(w);
                }
                ProtoMsg::BarrierArrive { barrier, participants } => {
                    w.put_u8(15);
                    w.put_u16(barrier);
                    w.put_u32(participants);
                }
                ProtoMsg::BarrierRelease { barrier } => {
                    w.put_u8(16);
                    w.put_u16(barrier);
                }
                ProtoMsg::LockReq { lock, requester } => {
                    w.put_u8(17);
                    w.put_u16(lock);
                    requester.save(w);
                }
                ProtoMsg::LockGrant { lock } => {
                    w.put_u8(18);
                    w.put_u16(lock);
                }
                ProtoMsg::LockRelease { lock } => {
                    w.put_u8(19);
                    w.put_u16(lock);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.get_u8()? {
                0 => ProtoMsg::ReadReq { block: Snap::load(r)?, requester: Snap::load(r)? },
                1 => ProtoMsg::ReadReply { block: Snap::load(r)? },
                2 => ProtoMsg::WriteReq { block: Snap::load(r)?, requester: Snap::load(r)? },
                3 => ProtoMsg::UpgradeReq { block: Snap::load(r)?, requester: Snap::load(r)? },
                4 => ProtoMsg::Inval {
                    block: Snap::load(r)?,
                    txn: Snap::load(r)?,
                    home: Snap::load(r)?,
                },
                5 => ProtoMsg::InvAck {
                    block: Snap::load(r)?,
                    txn: Snap::load(r)?,
                    count: r.get_u32()?,
                },
                6 => ProtoMsg::RelayInval {
                    block: Snap::load(r)?,
                    txn: Snap::load(r)?,
                    home: Snap::load(r)?,
                },
                7 => ProtoMsg::SweepTrigger { block: Snap::load(r)?, txn: Snap::load(r)? },
                8 => ProtoMsg::GatherAck { block: Snap::load(r)?, txn: Snap::load(r)? },
                9 => ProtoMsg::WriteGrant { block: Snap::load(r)?, with_data: r.get_bool()? },
                10 => ProtoMsg::Fetch {
                    block: Snap::load(r)?,
                    requester: Snap::load(r)?,
                    for_write: r.get_bool()?,
                },
                11 => ProtoMsg::OwnerData { block: Snap::load(r)?, exclusive: r.get_bool()? },
                12 => ProtoMsg::FetchWb {
                    block: Snap::load(r)?,
                    requester: Snap::load(r)?,
                    was_write: r.get_bool()?,
                },
                13 => ProtoMsg::Writeback { block: Snap::load(r)?, owner: Snap::load(r)? },
                14 => ProtoMsg::WritebackAck { block: Snap::load(r)? },
                15 => ProtoMsg::BarrierArrive { barrier: r.get_u16()?, participants: r.get_u32()? },
                16 => ProtoMsg::BarrierRelease { barrier: r.get_u16()? },
                17 => ProtoMsg::LockReq { lock: r.get_u16()?, requester: Snap::load(r)? },
                18 => ProtoMsg::LockGrant { lock: r.get_u16()? },
                19 => ProtoMsg::LockRelease { lock: r.get_u16()? },
                t => return Err(SnapError::Corrupt(format!("bad ProtoMsg tag {t}"))),
            })
        }
    }

    impl Snap for MsgTable {
        fn save(&self, w: &mut SnapWriter) {
            self.msgs.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(MsgTable { msgs: Snap::load(r)? })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = MsgTable::new();
        let a = t.push(ProtoMsg::ReadReq { block: BlockId(1), requester: NodeId(2) });
        let b = t.push(ProtoMsg::WriteGrant { block: BlockId(1), with_data: true });
        assert_ne!(a, b);
        assert_eq!(t.get(a), ProtoMsg::ReadReq { block: BlockId(1), requester: NodeId(2) });
        assert_eq!(t.get(b), ProtoMsg::WriteGrant { block: BlockId(1), with_data: true });
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn data_classification() {
        assert!(ProtoMsg::ReadReply { block: BlockId(0) }.carries_data());
        assert!(ProtoMsg::WriteGrant { block: BlockId(0), with_data: true }.carries_data());
        assert!(!ProtoMsg::WriteGrant { block: BlockId(0), with_data: false }.carries_data());
        assert!(
            !ProtoMsg::Inval { block: BlockId(0), txn: TxnId(1), home: NodeId(0) }.carries_data()
        );
        assert!(!ProtoMsg::InvAck { block: BlockId(0), txn: TxnId(1), count: 1 }.carries_data());
        assert!(ProtoMsg::Writeback { block: BlockId(0), owner: NodeId(1) }.carries_data());
    }
}
