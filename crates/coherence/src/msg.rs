//! Protocol messages and the payload table.
//!
//! Worm payloads are opaque `u64` keys into a [`MsgTable`]; the protocol
//! layer allocates a message, injects a worm carrying its key, and decodes
//! the key on delivery. Multidestination invalidation worms deliver the
//! *same* message to every sharer; the per-sharer acknowledgement action is
//! looked up in the transaction table instead.

use crate::addr::BlockId;
use wormdsm_mesh::topology::NodeId;
use wormdsm_mesh::worm::TxnId;

/// Coherence protocol message types.
///
/// `Req`-network messages go home-ward or owner-ward; `Reply`-network
/// messages carry data, grants, and acknowledgements (the DASH-style
/// two-network split that breaks request/reply deadlock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Read miss: requester -> home. (Req net)
    ReadReq {
        /// Missing block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Data reply with read permission: home -> requester. (Reply net)
    ReadReply {
        /// The block.
        block: BlockId,
    },
    /// Write miss (no copy): requester -> home. (Req net)
    WriteReq {
        /// The block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Ownership upgrade (Shared copy held): requester -> home. (Req net)
    UpgradeReq {
        /// The block.
        block: BlockId,
        /// Requesting node.
        requester: NodeId,
    },
    /// Invalidation request: home -> sharer(s); carried by unicast worms
    /// (UI) or multidestination i-reserve worms (MI). (Req net)
    Inval {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Home node acks must reach.
        home: NodeId,
    },
    /// Unicast invalidation acknowledgement: sharer -> home. (Reply net)
    InvAck {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Number of acknowledgements this message carries (relays of
        /// deposit fallbacks may carry more than one).
        count: u32,
    },
    /// Relay instruction to a tree-scheme delegate: inject the column
    /// invalidation worms planned for this transaction. (Req net)
    RelayInval {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
        /// Home node.
        home: NodeId,
    },
    /// Terminates a first-level gather at the sweep-trigger node of the
    /// two-phase schemes: the receiving node injects the planned sweep
    /// gather, seeding it with this worm's ack count. (Reply net)
    SweepTrigger {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
    },
    /// Combined acknowledgement carried by an i-gather worm; the count
    /// rides in the worm itself. (Reply net)
    GatherAck {
        /// The block.
        block: BlockId,
        /// Invalidation transaction.
        txn: TxnId,
    },
    /// Write permission grant (with data when `with_data`): home ->
    /// writer. (Reply net)
    WriteGrant {
        /// The block.
        block: BlockId,
        /// Whether a data copy rides along (write miss vs upgrade).
        with_data: bool,
    },
    /// Fetch request for a dirty block: home -> owner; `for_write` asks
    /// the owner to invalidate (ownership transfer) rather than downgrade.
    /// (Req net)
    Fetch {
        /// The block.
        block: BlockId,
        /// Node that misses.
        requester: NodeId,
        /// Read miss (false) or write miss (true).
        for_write: bool,
    },
    /// Dirty data forwarded by the owner straight to the requester.
    /// (Reply net)
    OwnerData {
        /// The block.
        block: BlockId,
        /// True when ownership transferred (requester installs Modified).
        exclusive: bool,
    },
    /// Sharing/ownership writeback: owner -> home after a Fetch.
    /// (Reply net)
    FetchWb {
        /// The block.
        block: BlockId,
        /// The node the data was forwarded to.
        requester: NodeId,
        /// True when the owner invalidated (write fetch).
        was_write: bool,
    },
    /// Dirty eviction writeback: owner -> home. (Req net; it initiates a
    /// transaction.)
    Writeback {
        /// The block.
        block: BlockId,
        /// Evicting node.
        owner: NodeId,
    },
    /// Writeback acknowledgement: home -> evictor (releases the writeback
    /// buffer slot). (Reply net)
    WritebackAck {
        /// The block.
        block: BlockId,
    },
    /// Barrier arrival: participant -> barrier home. (Req net)
    BarrierArrive {
        /// Barrier identifier.
        barrier: u16,
        /// Number of arrivals that release the barrier.
        participants: u32,
    },
    /// Barrier release: barrier home -> participant. (Reply net)
    BarrierRelease {
        /// Barrier identifier.
        barrier: u16,
    },
    /// Lock request: node -> lock home. (Req net)
    LockReq {
        /// Lock identifier.
        lock: u16,
        /// Requesting node.
        requester: NodeId,
    },
    /// Lock grant: lock home -> holder. (Reply net)
    LockGrant {
        /// Lock identifier.
        lock: u16,
    },
    /// Lock release: holder -> lock home. (Req net)
    LockRelease {
        /// Lock identifier.
        lock: u16,
    },
}

impl ProtoMsg {
    /// True for messages that carry a data block.
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            ProtoMsg::ReadReply { .. }
                | ProtoMsg::OwnerData { .. }
                | ProtoMsg::FetchWb { .. }
                | ProtoMsg::Writeback { .. }
                | ProtoMsg::WriteGrant { with_data: true, .. }
        )
    }
}

/// Payload table mapping worm payload keys to protocol messages.
#[derive(Debug, Default)]
pub struct MsgTable {
    msgs: Vec<ProtoMsg>,
}

impl MsgTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a message, returning its payload key.
    pub fn push(&mut self, m: ProtoMsg) -> u64 {
        self.msgs.push(m);
        (self.msgs.len() - 1) as u64
    }

    /// Decode a payload key.
    pub fn get(&self, key: u64) -> ProtoMsg {
        self.msgs[key as usize]
    }

    /// Number of messages allocated so far.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if no messages were allocated.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = MsgTable::new();
        let a = t.push(ProtoMsg::ReadReq { block: BlockId(1), requester: NodeId(2) });
        let b = t.push(ProtoMsg::WriteGrant { block: BlockId(1), with_data: true });
        assert_ne!(a, b);
        assert_eq!(t.get(a), ProtoMsg::ReadReq { block: BlockId(1), requester: NodeId(2) });
        assert_eq!(t.get(b), ProtoMsg::WriteGrant { block: BlockId(1), with_data: true });
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn data_classification() {
        assert!(ProtoMsg::ReadReply { block: BlockId(0) }.carries_data());
        assert!(ProtoMsg::WriteGrant { block: BlockId(0), with_data: true }.carries_data());
        assert!(!ProtoMsg::WriteGrant { block: BlockId(0), with_data: false }.carries_data());
        assert!(
            !ProtoMsg::Inval { block: BlockId(0), txn: TxnId(1), home: NodeId(0) }.carries_data()
        );
        assert!(!ProtoMsg::InvAck { block: BlockId(0), txn: TxnId(1), count: 1 }.carries_data());
        assert!(ProtoMsg::Writeback { block: BlockId(0), owner: NodeId(1) }.carries_data());
    }
}
