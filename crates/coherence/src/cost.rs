//! Controller/memory cost model and message sizes.
//!
//! All values are in 5 ns network cycles, derived from the paper's stated
//! technology point: 100 MHz processors (2 cycles per CPU clock),
//! 200 MB/s links (1 flit per cycle), 20 ns routers, and DRAM in the
//! ~120 ns range typical of the DASH/FLASH era the paper validates its
//! Table 4/5 miss latencies against.

use crate::msg::ProtoMsg;
use wormdsm_sim::Cycle;

/// Per-action controller and memory costs, in cycles.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Directory controller: receive + decode a message and look up /
    /// update the directory entry.
    pub dc_proc: Cycle,
    /// Directory controller: compose and hand one outgoing message to the
    /// NIC. Every extra message sent from the home adds this much
    /// occupancy — the heart of the paper's occupancy argument.
    pub dc_send: Cycle,
    /// Cache controller: receive + decode a message.
    pub cc_proc: Cycle,
    /// Cache controller: compose and send a message.
    pub cc_send: Cycle,
    /// Processor cache access (hit, invalidate, fill).
    pub cache_access: Cycle,
    /// DRAM access (read or write a block).
    pub mem_access: Cycle,
    /// Posting an i-ack signal to the router interface via memory-mapped
    /// I/O.
    pub iack_post: Cycle,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dc_proc: 8,      // 40 ns directory occupancy per handled message
            dc_send: 4,      // 20 ns per composed message
            cc_proc: 6,      // 30 ns
            cc_send: 4,      // 20 ns
            cache_access: 2, // 10 ns SRAM
            mem_access: 24,  // 120 ns DRAM
            iack_post: 2,    // 10 ns memory-mapped store
        }
    }
}

/// Message sizes in flits (1 flit = 1 byte at 200 MB/s and 5 ns cycles).
#[derive(Debug, Clone, Copy)]
pub struct MsgSizes {
    /// Control message (type + block address + source): header flits.
    pub control: u16,
    /// Extra flits for a data block (32-byte blocks by default).
    pub data: u16,
    /// Extra header flits per multidestination beyond the first (the
    /// presence-bit-slice encoding).
    pub per_extra_dest_x4: u16,
    /// i-gather worm size (small fixed-size collector).
    pub gather: u16,
}

impl Default for MsgSizes {
    fn default() -> Self {
        Self { control: 8, data: 32, per_extra_dest_x4: 1, gather: 6 }
    }
}

impl MsgSizes {
    /// Flits of a unicast worm carrying `m`.
    pub fn unicast_len(&self, m: &ProtoMsg) -> u16 {
        if m.carries_data() {
            self.control + self.data
        } else {
            self.control
        }
    }

    /// Flits of a multidestination worm with `ndests` destinations
    /// carrying `m`: base length plus one flit per four extra
    /// destinations of bit-string header.
    pub fn multicast_len(&self, m: &ProtoMsg, ndests: usize) -> u16 {
        let extra = ndests.saturating_sub(1).div_ceil(4) as u16 * self.per_extra_dest_x4;
        self.unicast_len(m) + extra
    }

    /// Flits of an i-gather worm.
    pub fn gather_len(&self) -> u16 {
        self.gather
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockId;
    use wormdsm_mesh::topology::NodeId;
    use wormdsm_mesh::worm::TxnId;

    #[test]
    fn default_costs_match_technology_point() {
        let c = CostModel::default();
        // 40 ns DC occupancy, 120 ns DRAM at 5 ns cycles.
        assert_eq!(c.dc_proc * 5, 40);
        assert_eq!(c.mem_access * 5, 120);
    }

    #[test]
    fn unicast_sizes() {
        let s = MsgSizes::default();
        let ctrl = ProtoMsg::Inval { block: BlockId(0), txn: TxnId(1), home: NodeId(0) };
        let data = ProtoMsg::ReadReply { block: BlockId(0) };
        assert_eq!(s.unicast_len(&ctrl), 8);
        assert_eq!(s.unicast_len(&data), 40);
    }

    #[test]
    fn multicast_header_grows_with_destinations() {
        let s = MsgSizes::default();
        let ctrl = ProtoMsg::Inval { block: BlockId(0), txn: TxnId(1), home: NodeId(0) };
        assert_eq!(s.multicast_len(&ctrl, 1), 8);
        assert_eq!(s.multicast_len(&ctrl, 2), 9);
        assert_eq!(s.multicast_len(&ctrl, 5), 9);
        assert_eq!(s.multicast_len(&ctrl, 6), 10);
        assert_eq!(s.multicast_len(&ctrl, 16), 12);
    }

    #[test]
    fn gather_is_small_and_fixed() {
        let s = MsgSizes::default();
        assert!(s.gather_len() < s.control + s.data);
        assert_eq!(s.gather_len(), 6);
    }
}
