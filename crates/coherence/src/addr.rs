//! Addresses, blocks, and home mapping.

use wormdsm_mesh::topology::NodeId;

/// A byte address in the shared space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

/// A cache-block identifier (address >> block bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl core::fmt::Display for BlockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

/// Memory-system geometry: block size and home interleaving.
#[derive(Debug, Clone, Copy)]
pub struct MemGeometry {
    /// log2 of the cache-block size in bytes (paper-era systems used 16-64
    /// byte blocks; default 32).
    pub block_bits: u32,
    /// Number of nodes blocks are interleaved across.
    pub nodes: usize,
}

impl MemGeometry {
    /// Geometry with `block_bytes` blocks across `nodes` nodes.
    pub fn new(block_bytes: u64, nodes: usize) -> Self {
        assert!(block_bytes.is_power_of_two() && block_bytes >= 4);
        assert!(nodes >= 1);
        Self { block_bits: block_bytes.trailing_zeros(), nodes }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_bits
    }

    /// Block containing `a`.
    pub fn block_of(&self, a: Addr) -> BlockId {
        BlockId(a.0 >> self.block_bits)
    }

    /// First byte address of `b`.
    pub fn base_of(&self, b: BlockId) -> Addr {
        Addr(b.0 << self.block_bits)
    }

    /// Home node of `b` (low-order block-interleaving, the common choice
    /// in CC-NUMA machines of the era).
    pub fn home_of(&self, b: BlockId) -> NodeId {
        NodeId((b.0 % self.nodes as u64) as u16)
    }
}

mod snap_impls {
    use super::{Addr, BlockId};
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for Addr {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u64(self.0);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(Addr(r.get_u64()?))
        }
    }

    impl Snap for BlockId {
        fn save(&self, w: &mut SnapWriter) {
            w.put_u64(self.0);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(BlockId(r.get_u64()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_roundtrip() {
        let g = MemGeometry::new(32, 64);
        assert_eq!(g.block_bytes(), 32);
        assert_eq!(g.block_of(Addr(0)), BlockId(0));
        assert_eq!(g.block_of(Addr(31)), BlockId(0));
        assert_eq!(g.block_of(Addr(32)), BlockId(1));
        assert_eq!(g.base_of(BlockId(3)), Addr(96));
    }

    #[test]
    fn homes_interleave_across_all_nodes() {
        let g = MemGeometry::new(32, 16);
        let mut seen = std::collections::HashSet::new();
        for b in 0..16 {
            seen.insert(g.home_of(BlockId(b)));
        }
        assert_eq!(seen.len(), 16);
        assert_eq!(g.home_of(BlockId(16)), g.home_of(BlockId(0)));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_block_rejected() {
        MemGeometry::new(48, 4);
    }
}
