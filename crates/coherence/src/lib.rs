//! # wormdsm-coherence — directory-based coherence substrate
//!
//! The passive building blocks of the paper's DSM node: addresses and home
//! mapping, processor caches (MSI, direct-mapped, write-back), the
//! fully-mapped directory with column-organized presence-bit views,
//! protocol message definitions, the controller/memory cost model, and the
//! writeback buffer that closes the fetch/writeback race window.
//!
//! The *active* protocol engine (transaction FSMs, the invalidation
//! schemes, sequential-consistency stalling) lives in `wormdsm-core`, which
//! drives these structures against the `wormdsm-mesh` network.

#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod cost;
pub mod directory;
pub mod msg;
pub mod wb;

pub use addr::{Addr, BlockId, MemGeometry};
pub use cache::{Cache, Evicted, LineState};
pub use cost::{CostModel, MsgSizes};
pub use directory::{DirEntry, DirState, Directory, QueuedReq};
pub use msg::{MsgTable, ProtoMsg};
pub use wb::WbBuffer;
