//! Fully-mapped directory.
//!
//! One entry per memory block at its home node: a state plus a presence-bit
//! vector identifying every node with a valid cached copy \[44\]. The paper's
//! schemes slice the presence bits column-wise to form multidestination
//! worm headers, so the entry exposes per-column views.

use crate::addr::BlockId;
use std::collections::VecDeque;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_sim::FlatMap;

/// Directory entry state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// Not cached anywhere; memory is the only copy.
    Uncached,
    /// One or more read-only copies; presence bits identify them.
    Shared,
    /// Exclusive dirty copy at `owner`.
    Exclusive(NodeId),
    /// An invalidation / ownership transfer is in flight; further requests
    /// queue behind it.
    Waiting,
}

/// A queued request waiting for a `Waiting` entry to settle (tagged by the
/// opaque message key the protocol layer uses to re-dispatch it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedReq {
    /// Requesting node.
    pub node: NodeId,
    /// Opaque protocol-message key to replay.
    pub msg_key: u64,
}

/// A fully-mapped directory entry.
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Current state.
    pub state: DirState,
    /// Presence bits, one per node.
    presence: Vec<u64>,
    /// Requests queued while `Waiting`.
    pub queue: VecDeque<QueuedReq>,
}

impl DirEntry {
    fn new(nodes: usize) -> Self {
        Self {
            state: DirState::Uncached,
            presence: vec![0; nodes.div_ceil(64)],
            queue: VecDeque::new(),
        }
    }

    /// Set the presence bit for `n`.
    pub fn set_presence(&mut self, n: NodeId) {
        self.presence[n.idx() / 64] |= 1 << (n.idx() % 64);
    }

    /// Clear the presence bit for `n`.
    pub fn clear_presence(&mut self, n: NodeId) {
        self.presence[n.idx() / 64] &= !(1 << (n.idx() % 64));
    }

    /// True if `n`'s presence bit is set.
    pub fn has_presence(&self, n: NodeId) -> bool {
        (self.presence[n.idx() / 64] >> (n.idx() % 64)) & 1 == 1
    }

    /// Clear every presence bit.
    pub fn clear_all(&mut self) {
        self.presence.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of presence bits set.
    pub fn sharer_count(&self) -> usize {
        self.presence.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All sharers, ascending node id.
    pub fn sharers(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.sharer_count());
        for (wi, &w) in self.presence.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(NodeId((wi * 64 + b) as u16));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Sharers other than `exclude` (the writer requesting ownership).
    pub fn sharers_except(&self, exclude: NodeId) -> Vec<NodeId> {
        self.sharers().into_iter().filter(|&n| n != exclude).collect()
    }

    /// Sharers grouped by mesh column (the paper's column-organized
    /// presence-bit view), columns ascending, rows ascending within each.
    pub fn sharers_by_column(&self, mesh: &Mesh2D, exclude: NodeId) -> Vec<(usize, Vec<NodeId>)> {
        let mut cols: Vec<Vec<NodeId>> = vec![Vec::new(); mesh.width()];
        for n in self.sharers_except(exclude) {
            cols[mesh.coord(n).x as usize].push(n);
        }
        cols.into_iter().enumerate().filter(|(_, v)| !v.is_empty()).collect()
    }
}

/// The directory of one home node: entries for every block homed there,
/// allocated lazily (an absent entry is `Uncached`).
///
/// Entries live in an open-addressed [`FlatMap`]: directory lookups sit on
/// the per-transaction hot path (every read miss, write miss, and ack
/// touches the home's entry), and block ids are sparse `u64`s, so a dense
/// index is infeasible but SipHash is overkill. Entries are never removed.
#[derive(Debug, Default)]
pub struct Directory {
    entries: FlatMap<DirEntry>,
    nodes: usize,
}

impl Directory {
    /// Directory for a system of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { entries: FlatMap::new(), nodes }
    }

    /// Entry for `b`, created Uncached if absent.
    pub fn entry_mut(&mut self, b: BlockId) -> &mut DirEntry {
        let nodes = self.nodes;
        self.entries.get_or_insert_with(b.0, || DirEntry::new(nodes))
    }

    /// Entry for `b` if it exists.
    pub fn entry(&self, b: BlockId) -> Option<&DirEntry> {
        self.entries.get(b.0)
    }

    /// State of `b` (Uncached when no entry exists).
    pub fn state(&self, b: BlockId) -> DirState {
        self.entries.get(b.0).map_or(DirState::Uncached, |e| e.state)
    }

    /// All materialized block ids, ascending.
    ///
    /// **Cold path only** — collects and sorts on every call. Its
    /// callers are end-of-run audits (`DsmSystem::verify_coherence`,
    /// which the bench binaries now run after every arm) and debug
    /// sweeps; keep it off the per-transaction path, where
    /// [`Directory::entry`]/[`Directory::entry_mut`] are the O(1)
    /// accessors.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.entries.keys().map(BlockId).collect();
        v.sort_unstable();
        v
    }

    /// Number of materialized entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry was ever touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

mod snap_impls {
    use super::{DirEntry, DirState, Directory, QueuedReq};
    use wormdsm_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for DirState {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                DirState::Uncached => w.put_u8(0),
                DirState::Shared => w.put_u8(1),
                DirState::Exclusive(owner) => {
                    w.put_u8(2);
                    owner.save(w);
                }
                DirState::Waiting => w.put_u8(3),
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.get_u8()? {
                0 => Ok(DirState::Uncached),
                1 => Ok(DirState::Shared),
                2 => Ok(DirState::Exclusive(Snap::load(r)?)),
                3 => Ok(DirState::Waiting),
                t => Err(SnapError::Corrupt(format!("bad DirState tag {t}"))),
            }
        }
    }

    impl Snap for QueuedReq {
        fn save(&self, w: &mut SnapWriter) {
            self.node.save(w);
            w.put_u64(self.msg_key);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(QueuedReq { node: Snap::load(r)?, msg_key: r.get_u64()? })
        }
    }

    impl Snap for DirEntry {
        fn save(&self, w: &mut SnapWriter) {
            self.state.save(w);
            self.presence.save(w);
            self.queue.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(DirEntry { state: Snap::load(r)?, presence: Snap::load(r)?, queue: Snap::load(r)? })
        }
    }

    impl Snap for Directory {
        fn save(&self, w: &mut SnapWriter) {
            w.put_usize(self.nodes);
            self.entries.save(w);
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let nodes = r.get_len()?;
            let entries: wormdsm_sim::FlatMap<DirEntry> = Snap::load(r)?;
            let words = nodes.div_ceil(64);
            for (_, e) in entries.iter() {
                if e.presence.len() != words {
                    return Err(SnapError::Corrupt(format!(
                        "directory entry presence width {} != {} for {} nodes",
                        e.presence.len(),
                        words,
                        nodes
                    )));
                }
            }
            Ok(Directory { entries, nodes })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presence_bits_roundtrip() {
        let mut e = DirEntry::new(256);
        for i in [0u16, 63, 64, 127, 255] {
            e.set_presence(NodeId(i));
        }
        assert_eq!(e.sharer_count(), 5);
        assert!(e.has_presence(NodeId(64)));
        assert!(!e.has_presence(NodeId(1)));
        assert_eq!(e.sharers(), vec![NodeId(0), NodeId(63), NodeId(64), NodeId(127), NodeId(255)]);
        e.clear_presence(NodeId(64));
        assert!(!e.has_presence(NodeId(64)));
        assert_eq!(e.sharer_count(), 4);
        e.clear_all();
        assert_eq!(e.sharer_count(), 0);
    }

    #[test]
    fn sharers_except_excludes_writer() {
        let mut e = DirEntry::new(64);
        e.set_presence(NodeId(3));
        e.set_presence(NodeId(7));
        assert_eq!(e.sharers_except(NodeId(3)), vec![NodeId(7)]);
        assert_eq!(e.sharers_except(NodeId(9)).len(), 2);
    }

    #[test]
    fn sharers_by_column_groups_and_sorts() {
        let mesh = Mesh2D::square(4);
        let mut e = DirEntry::new(16);
        // (1,0)=n1, (1,2)=n9, (3,1)=n7, (0,3)=n12
        for n in [1u16, 9, 7, 12] {
            e.set_presence(NodeId(n));
        }
        let cols = e.sharers_by_column(&mesh, NodeId(12)); // exclude (0,3)
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (1, vec![NodeId(1), NodeId(9)]));
        assert_eq!(cols[1], (3, vec![NodeId(7)]));
    }

    #[test]
    fn directory_lazy_entries() {
        let mut d = Directory::new(16);
        assert_eq!(d.state(BlockId(5)), DirState::Uncached);
        assert!(d.is_empty());
        d.entry_mut(BlockId(5)).state = DirState::Shared;
        d.entry_mut(BlockId(5)).set_presence(NodeId(2));
        assert_eq!(d.state(BlockId(5)), DirState::Shared);
        assert_eq!(d.len(), 1);
        assert_eq!(d.entry(BlockId(5)).unwrap().sharer_count(), 1);
    }

    #[test]
    fn queue_holds_requests_in_order() {
        let mut d = Directory::new(4);
        let e = d.entry_mut(BlockId(1));
        e.state = DirState::Waiting;
        e.queue.push_back(QueuedReq { node: NodeId(1), msg_key: 10 });
        e.queue.push_back(QueuedReq { node: NodeId(2), msg_key: 11 });
        assert_eq!(e.queue.pop_front(), Some(QueuedReq { node: NodeId(1), msg_key: 10 }));
    }
}
