//! Randomized property tests on the coherence substrate: cache behaves
//! like a model map, directory presence bits behave like a model set,
//! home mapping is total and balanced.
//!
//! Cases are generated from the workspace's deterministic [`Rng`] with
//! fixed seeds, so every run exercises the same cases.

use std::collections::HashMap;
use wormdsm_coherence::{Addr, BlockId, Cache, DirEntry, Evicted, LineState, MemGeometry};
use wormdsm_mesh::topology::NodeId;
use wormdsm_sim::Rng;

/// Operations against the cache under test.
#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u64, bool), // block, modified
    Invalidate(u64),
    Upgrade(u64),
    Downgrade(u64),
}

fn cache_ops(rng: &mut Rng) -> Vec<CacheOp> {
    let n = rng.range(1, 199) as usize;
    (0..n)
        .map(|_| {
            let b = rng.below(64);
            match rng.index(4) {
                0 => CacheOp::Insert(b, rng.chance(0.5)),
                1 => CacheOp::Invalidate(b),
                2 => CacheOp::Upgrade(b),
                _ => CacheOp::Downgrade(b),
            }
        })
        .collect()
}

#[test]
fn cache_matches_reference_model() {
    let mut rng = Rng::new(0xC0DE_0001);
    for _ in 0..64 {
        let ops = cache_ops(&mut rng);
        // Reference: a map slot -> (block, state), 16 direct-mapped slots.
        let sets = 16usize;
        let mut cache = Cache::new(sets);
        let mut model: HashMap<usize, (u64, LineState)> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::Insert(b, modified) => {
                    let state = if modified { LineState::Modified } else { LineState::Shared };
                    let slot = b as usize % sets;
                    let expect = match model.get(&slot) {
                        None => Evicted::None,
                        Some(&(ob, _)) if ob == b => Evicted::None,
                        Some(&(ob, LineState::Shared)) => Evicted::Clean(BlockId(ob)),
                        Some(&(ob, LineState::Modified)) => Evicted::Dirty(BlockId(ob)),
                    };
                    let got = cache.insert(BlockId(b), state);
                    assert_eq!(got, expect);
                    model.insert(slot, (b, state));
                }
                CacheOp::Invalidate(b) => {
                    let slot = b as usize % sets;
                    let expect = match model.get(&slot) {
                        Some(&(ob, st)) if ob == b => Some(st),
                        _ => None,
                    };
                    assert_eq!(cache.invalidate(BlockId(b)), expect);
                    if expect.is_some() {
                        model.remove(&slot);
                    }
                }
                CacheOp::Upgrade(b) => {
                    let slot = b as usize % sets;
                    let present = matches!(model.get(&slot), Some(&(ob, _)) if ob == b);
                    assert_eq!(cache.upgrade(BlockId(b)), present);
                    if present {
                        model.insert(slot, (b, LineState::Modified));
                    }
                }
                CacheOp::Downgrade(b) => {
                    let slot = b as usize % sets;
                    let present = matches!(model.get(&slot), Some(&(ob, _)) if ob == b);
                    assert_eq!(cache.downgrade(BlockId(b)), present);
                    if present {
                        model.insert(slot, (b, LineState::Shared));
                    }
                }
            }
            // State agreement on every block after each step.
            assert_eq!(cache.occupancy(), model.len());
        }
    }
}

#[test]
fn presence_bits_match_reference_set() {
    let mut rng = Rng::new(0xC0DE_0002);
    for _ in 0..64 {
        let nodes = rng.range(1, 299) as usize;
        let op_count = rng.range(1, 199) as usize;
        let mut e = DirEntry::new_for_test(nodes);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..op_count {
            let set = rng.chance(0.5);
            let n = NodeId(rng.below(300) as u16 % nodes as u16);
            if set {
                e.set_presence(n);
                model.insert(n);
            } else {
                e.clear_presence(n);
                model.remove(&n);
            }
        }
        assert_eq!(e.sharer_count(), model.len());
        assert_eq!(e.sharers(), model.iter().copied().collect::<Vec<_>>());
        for i in 0..nodes as u16 {
            assert_eq!(e.has_presence(NodeId(i)), model.contains(&NodeId(i)));
        }
    }
}

#[test]
fn home_mapping_total_and_block_roundtrip() {
    let mut rng = Rng::new(0xC0DE_0003);
    for _ in 0..256 {
        let nodes = rng.range(1, 255) as usize;
        let addr = rng.below(1_000_000_000);
        let g = MemGeometry::new(32, nodes);
        let b = g.block_of(Addr(addr));
        let home = g.home_of(b);
        assert!(home.idx() < nodes);
        // Base address maps back to the same block.
        assert_eq!(g.block_of(g.base_of(b)), b);
        // All addresses within a block share it.
        assert_eq!(g.block_of(Addr(addr | 31)), g.block_of(Addr(addr & !31)));
    }
}

/// Local shim: `DirEntry` construction is private to the directory; build
/// entries through a directory.
trait EntryForTest {
    fn new_for_test(nodes: usize) -> DirEntry;
}

impl EntryForTest for DirEntry {
    fn new_for_test(nodes: usize) -> DirEntry {
        let mut d = wormdsm_coherence::Directory::new(nodes);
        d.entry_mut(BlockId(0)).clone()
    }
}
