//! Synthetic invalidation patterns and background traffic.
//!
//! Single-transaction experiments (latency / occupancy / traffic vs.
//! sharer count) need controlled sharer placements; loaded-network
//! experiments need tunable background traffic. Both are generated here,
//! deterministically from a seed.

use crate::driver::Workload;
use wormdsm_coherence::Addr;
use wormdsm_core::MemOp;
use wormdsm_mesh::topology::{Mesh2D, NodeId};
use wormdsm_sim::Rng;

/// Spatial distribution of a sharer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Sharers uniformly random over the mesh.
    UniformRandom,
    /// All sharers in one random column (the best case for column worms).
    SameColumn,
    /// All sharers in one random row (the stress case for column
    /// grouping: every sharer is its own group).
    SameRow,
    /// Sharers clustered within a Chebyshev radius of a random center.
    Cluster {
        /// Cluster radius in hops.
        radius: usize,
    },
}

/// A generated invalidation scenario.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Home node of the written block.
    pub home: NodeId,
    /// The writing node (not a sharer, not the home).
    pub writer: NodeId,
    /// Sharer set (excludes home and writer).
    pub sharers: Vec<NodeId>,
}

/// Generate a `d`-sharer pattern of the given kind.
///
/// Panics if the mesh cannot host `d` sharers plus a distinct home and
/// writer under the kind's constraints.
pub fn gen_pattern(mesh: &Mesh2D, kind: PatternKind, d: usize, rng: &mut Rng) -> Pattern {
    let n = mesh.nodes();
    assert!(d + 2 <= n, "mesh too small for d={d}");
    let home = NodeId(rng.index(n) as u16);
    let candidates: Vec<NodeId> = match kind {
        PatternKind::UniformRandom => mesh.iter_nodes().filter(|&x| x != home).collect(),
        PatternKind::SameColumn => {
            let col = rng.index(mesh.width());
            (0..mesh.height()).map(|y| mesh.node_at(col, y)).filter(|&x| x != home).collect()
        }
        PatternKind::SameRow => {
            let row = rng.index(mesh.height());
            (0..mesh.width()).map(|x| mesh.node_at(x, row)).filter(|&x| x != home).collect()
        }
        PatternKind::Cluster { radius } => {
            let cx = rng.index(mesh.width());
            let cy = rng.index(mesh.height());
            mesh.iter_nodes()
                .filter(|&x| {
                    let c = mesh.coord(x);
                    x != home
                        && (c.x as usize).abs_diff(cx) <= radius
                        && (c.y as usize).abs_diff(cy) <= radius
                })
                .collect()
        }
    };
    assert!(candidates.len() > d, "{kind:?} offers {} nodes for d={d} + writer", candidates.len());
    let picks = rng.sample_distinct(candidates.len(), d + 1);
    let mut chosen: Vec<NodeId> = picks.into_iter().map(|i| candidates[i]).collect();
    let writer = chosen.pop().expect("d+1 picks");
    chosen.sort_unstable();
    Pattern { home, writer, sharers: chosen }
}

/// Background traffic: every processor alternates a compute gap with a
/// read of a fresh *private* remote block (guaranteed miss, no coherence
/// interference with the measured transaction). Smaller `gap` = higher
/// network load.
///
/// Private regions start at block `BG_BASE_BLOCK` and are spaced so no
/// two processors touch the same block.
pub fn background_workload(nodes: usize, ops_per_proc: usize, gap: u64, seed: u64) -> Workload {
    let mut w = Workload::new(nodes);
    let mut rng = Rng::new(seed);
    for p in 0..nodes {
        let mut r = rng.fork();
        for i in 0..ops_per_proc {
            if gap > 0 {
                w.push(p, wormdsm_core::MemOp::Compute(gap.max(1)));
            }
            let block = BG_BASE_BLOCK + (p as u64) * BG_REGION_BLOCKS + i as u64;
            // Jitter start order so processors don't phase-lock.
            if i == 0 {
                w.ops[p].push_front(MemOp::Compute(1 + r.below(32)));
            }
            w.push(p, MemOp::Read(Addr(block * 32)));
        }
    }
    w
}

/// First block of the background-traffic private regions (far above the
/// blocks any experiment shares).
pub const BG_BASE_BLOCK: u64 = 1 << 32;
/// Blocks reserved per processor for background traffic.
pub const BG_REGION_BLOCKS: u64 = 1 << 20;

/// First block of the synthetic sharing-pattern region.
pub const SHARING_BASE_BLOCK: u64 = 1 << 24;

/// Migratory sharing: a set of blocks is read-modify-written by one
/// processor after another under a per-block lock (the classic
/// lock-protected data pattern). Every handoff is a dirty cache-to-cache
/// transfer; invalidation sets stay at 0-1 — the regime where the paper's
/// schemes cannot help, useful as a negative control.
pub fn migratory_workload(nodes: usize, blocks: usize, rounds: usize, compute: u64) -> Workload {
    let mut w = Workload::new(nodes);
    for r in 0..rounds {
        for b in 0..blocks {
            let holder = (r * blocks + b) % nodes;
            let addr = Addr((SHARING_BASE_BLOCK + b as u64) * 32);
            w.push(holder, MemOp::Lock(b as u16));
            w.push(holder, MemOp::Read(addr));
            w.push(holder, MemOp::Compute(compute.max(1)));
            w.push(holder, MemOp::Write(addr));
            w.push(holder, MemOp::Unlock(b as u16));
        }
    }
    w
}

/// Producer-consumer sharing: one producer rewrites a set of blocks each
/// round; every consumer re-reads them. Each round's writes invalidate
/// all `nodes - 1` consumers — the regime where multidestination
/// invalidation pays off most; round boundaries use flag barriers.
pub fn producer_consumer_workload(
    nodes: usize,
    blocks: usize,
    rounds: usize,
    compute: u64,
) -> Workload {
    let mut w = Workload::new(nodes);
    let producer = 0usize;
    let mut barrier = 0u16;
    for _ in 0..rounds {
        for b in 0..blocks {
            let addr = Addr((SHARING_BASE_BLOCK + (1 << 16) + b as u64) * 32);
            w.push(producer, MemOp::Write(addr));
        }
        for p in 0..nodes {
            w.push(p, MemOp::Barrier { id: barrier, participants: nodes as u32 });
        }
        barrier += 1;
        for p in 0..nodes {
            if p != producer {
                for b in 0..blocks {
                    let addr = Addr((SHARING_BASE_BLOCK + (1 << 16) + b as u64) * 32);
                    w.push(p, MemOp::Read(addr));
                }
                w.push(p, MemOp::Compute(compute.max(1)));
            }
        }
        for p in 0..nodes {
            w.push(p, MemOp::Barrier { id: barrier, participants: nodes as u32 });
        }
        barrier += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh2D {
        Mesh2D::square(8)
    }

    #[test]
    fn patterns_have_right_shape() {
        let m = mesh();
        let mut rng = Rng::new(1);
        for kind in [
            PatternKind::UniformRandom,
            PatternKind::SameColumn,
            PatternKind::SameRow,
            PatternKind::Cluster { radius: 2 },
        ] {
            for d in [1, 3, 6] {
                let p = gen_pattern(&m, kind, d, &mut rng);
                assert_eq!(p.sharers.len(), d, "{kind:?}");
                assert!(!p.sharers.contains(&p.home));
                assert!(!p.sharers.contains(&p.writer));
                assert_ne!(p.home, p.writer);
                let set: std::collections::HashSet<_> = p.sharers.iter().collect();
                assert_eq!(set.len(), d, "distinct sharers");
            }
        }
    }

    #[test]
    fn same_column_really_is_one_column() {
        let m = mesh();
        let mut rng = Rng::new(2);
        let p = gen_pattern(&m, PatternKind::SameColumn, 5, &mut rng);
        let col = m.coord(p.sharers[0]).x;
        assert!(p.sharers.iter().all(|s| m.coord(*s).x == col));
    }

    #[test]
    fn same_row_really_is_one_row() {
        let m = mesh();
        let mut rng = Rng::new(3);
        let p = gen_pattern(&m, PatternKind::SameRow, 5, &mut rng);
        let row = m.coord(p.sharers[0]).y;
        assert!(p.sharers.iter().all(|s| m.coord(*s).y == row));
    }

    #[test]
    fn cluster_respects_radius() {
        let m = mesh();
        let mut rng = Rng::new(4);
        let p = gen_pattern(&m, PatternKind::Cluster { radius: 2 }, 6, &mut rng);
        let max_span = |f: fn(&Mesh2D, NodeId) -> usize| {
            let vals: Vec<usize> = p.sharers.iter().map(|&s| f(&m, s)).collect();
            vals.iter().max().unwrap() - vals.iter().min().unwrap()
        };
        assert!(max_span(|m, n| m.coord(n).x as usize) <= 4);
        assert!(max_span(|m, n| m.coord(n).y as usize) <= 4);
    }

    #[test]
    fn deterministic_generation() {
        let m = mesh();
        let a = gen_pattern(&m, PatternKind::UniformRandom, 7, &mut Rng::new(9));
        let b = gen_pattern(&m, PatternKind::UniformRandom, 7, &mut Rng::new(9));
        assert_eq!(a.sharers, b.sharers);
        assert_eq!(a.home, b.home);
        assert_eq!(a.writer, b.writer);
    }

    #[test]
    fn migratory_workload_hands_blocks_around() {
        let w = migratory_workload(4, 2, 3, 5);
        // 3 rounds x 2 blocks x 5 ops (lock, read, compute, write, unlock).
        assert_eq!(w.total_ops(), 30);
        // Each block visits multiple holders.
        let mut holders = std::collections::HashSet::new();
        for (p, q) in w.ops.iter().enumerate() {
            if !q.is_empty() {
                holders.insert(p);
            }
        }
        assert!(holders.len() >= 3);
    }

    #[test]
    fn producer_consumer_rounds_shape() {
        let w = producer_consumer_workload(4, 3, 2, 5);
        // Producer writes 3 blocks per round; consumers read them.
        let producer_writes = w.ops[0].iter().filter(|o| matches!(o, MemOp::Write(_))).count();
        assert_eq!(producer_writes, 6);
        let consumer_reads = w.ops[1].iter().filter(|o| matches!(o, MemOp::Read(_))).count();
        assert_eq!(consumer_reads, 6);
    }

    #[test]
    fn background_blocks_are_private() {
        let w = background_workload(16, 10, 5, 42);
        let mut seen = std::collections::HashSet::new();
        for q in &w.ops {
            for op in q {
                if let MemOp::Read(a) = op {
                    assert!(seen.insert(a.0), "block reused across processors");
                }
            }
        }
        assert_eq!(seen.len(), 160);
    }
}
