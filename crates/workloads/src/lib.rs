//! # wormdsm-workloads — programs that drive the simulated DSM
//!
//! The paper evaluates its schemes with synthetic invalidation patterns
//! and three applications (SPLASH-2 Barnes-Hut with 128 bodies / 4 time
//! steps, blocked LU on 128x128 matrices with 8x8 blocks, and All Pairs
//! Shortest Path). This crate provides:
//!
//! * a [`driver::Workload`] model — one deterministic `MemOp` stream per
//!   processor — and the loop that feeds it to a
//!   [`wormdsm_core::DsmSystem`];
//! * [`synthetic`] invalidation-pattern and background-traffic generators;
//! * [`apps`]: faithful *kernel* re-implementations of the three
//!   applications as op-stream generators (same data layout, partitioning
//!   and barrier structure as the originals; see DESIGN.md for the
//!   substitution rationale).

#![warn(missing_docs)]

pub mod apps;
pub mod driver;
pub mod synthetic;

pub use driver::{IssueState, RunResult, WindowStats, Workload};
pub use synthetic::{gen_pattern, Pattern, PatternKind};
