//! All Pairs Shortest Path (blocked Floyd-Warshall), the paper's third
//! application.
//!
//! The distance matrix is row-partitioned across processors. Iteration
//! `k` reads the pivot row `k` on *every* processor and updates each
//! owned row in place, with a barrier between iterations. The pivot row's
//! owner rewrites it on later iterations, so each rewrite invalidates up
//! to `P - 1` sharers — the workload with the largest invalidation sets,
//! and the one that separates the schemes most.

use super::emit_flag_barrier;
use super::layout::APSP_D;
use crate::driver::Workload;
use wormdsm_core::MemOp;

/// APSP configuration.
#[derive(Debug, Clone, Copy)]
pub struct ApspConfig {
    /// Vertices (matrix is `n x n`).
    pub n: usize,
    /// Processors (= mesh nodes).
    pub procs: usize,
    /// Compute cycles charged per row relaxation.
    pub relax_cost: u64,
}

impl Default for ApspConfig {
    fn default() -> Self {
        Self { n: 64, procs: 64, relax_cost: 32 }
    }
}

/// Blocks per matrix row (n x 4-byte entries / 32-byte blocks).
pub fn blocks_per_row(n: usize) -> u64 {
    ((n * 4) as u64).div_ceil(32).max(1)
}

/// Generate the APSP op streams.
pub fn generate(cfg: &ApspConfig) -> Workload {
    assert!(cfg.procs >= 1 && cfg.n >= cfg.procs);
    let bpr = blocks_per_row(cfg.n);
    let row_block = |row: usize, b: u64| APSP_D.block(row as u64 * bpr + b);
    let owner = |row: usize| row % cfg.procs;
    let mut w = Workload::new(cfg.procs);
    let mut barrier = 0u16;

    // Initialization: each owner writes its rows.
    for row in 0..cfg.n {
        let p = owner(row);
        for b in 0..bpr {
            w.push(p, MemOp::Write(row_block(row, b)));
        }
    }
    emit_flag_barrier(&mut w, &mut barrier, cfg.procs);

    // Floyd-Warshall iterations.
    for k in 0..cfg.n {
        for p in 0..cfg.procs {
            // Read the pivot row (shared by everyone).
            for b in 0..bpr {
                w.push(p, MemOp::Read(row_block(k, b)));
            }
            // Relax every owned row.
            for row in (0..cfg.n).filter(|r| owner(*r) == p) {
                for b in 0..bpr {
                    w.push(p, MemOp::Read(row_block(row, b)));
                }
                w.push(p, MemOp::Compute(cfg.relax_cost));
                for b in 0..bpr {
                    w.push(p, MemOp::Write(row_block(row, b)));
                }
            }
        }
        emit_flag_barrier(&mut w, &mut barrier, cfg.procs);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_match_structure() {
        let cfg = ApspConfig { n: 8, procs: 4, relax_cost: 10 };
        let w = generate(&cfg);
        let bpr = blocks_per_row(8) as usize; // 1
        assert_eq!(bpr, 1);
        // Init: 8 rows x 1 block writes, then 9 flag barriers (each:
        // 4 Barrier ops + 4 flag reads + a master flag write except the
        // first).
        // Per iteration (8): per proc: 1 pivot read + 2 owned rows x
        // (1 read + 1 compute + 1 write).
        let per_proc_iter = 1 + 2 * 3;
        let barrier_ops = 9 * (4 + 4) + 8; // 9 episodes, 8 master writes
        let expected = 8 + 8 * 4 * per_proc_iter + barrier_ops;
        assert_eq!(w.total_ops(), expected);
    }

    #[test]
    fn deterministic() {
        let cfg = ApspConfig { n: 8, procs: 4, relax_cost: 10 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
    }

    #[test]
    fn blocks_per_row_rounding() {
        assert_eq!(blocks_per_row(8), 1);
        assert_eq!(blocks_per_row(64), 8);
        assert_eq!(blocks_per_row(65), 9);
    }
}
