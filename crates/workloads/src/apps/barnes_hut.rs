//! Barnes-Hut N-body (SPLASH-2), 128 bodies / 4 time steps — the paper's
//! first application.
//!
//! Per time step: (1) the tree-build phase — processor 0 reads every body
//! position and writes the shared tree cells (the sequentialized-build
//! simplification; the original's parallel build with locks contributes
//! little coherence traffic at 128 bodies); (2) the force phase — every
//! processor reads the top tree cells (wide sharing) and a deterministic
//! pseudo-random interaction subset of body positions, then writes its
//! bodies' accelerations; (3) the update phase — each owner rewrites its
//! bodies' positions, invalidating last step's force-phase readers.

use super::emit_flag_barrier;
use super::layout::{BH_ACC, BH_POS, BH_TREE};
use crate::driver::Workload;
use wormdsm_core::MemOp;
use wormdsm_sim::Rng;

/// Barnes-Hut configuration.
#[derive(Debug, Clone, Copy)]
pub struct BarnesHutConfig {
    /// Bodies (128 in the paper).
    pub bodies: usize,
    /// Time steps (4 in the paper).
    pub steps: usize,
    /// Processors.
    pub procs: usize,
    /// Bodies sampled per force interaction list.
    pub interactions: usize,
    /// Compute cycles per body-body interaction.
    pub force_cost: u64,
    /// RNG seed for the interaction lists.
    pub seed: u64,
}

impl Default for BarnesHutConfig {
    fn default() -> Self {
        Self { bodies: 128, steps: 4, procs: 64, interactions: 24, force_cost: 8, seed: 0xB0D1E5 }
    }
}

/// Number of shared tree cells (about half the body count, as in
/// oct-trees over clustered distributions).
fn tree_cells(cfg: &BarnesHutConfig) -> usize {
    (cfg.bodies / 2).max(1)
}

/// Top-of-tree cells every processor reads each force phase.
const TOP_CELLS: usize = 8;

/// Generate the Barnes-Hut op streams.
pub fn generate(cfg: &BarnesHutConfig) -> Workload {
    assert!(cfg.procs >= 1 && cfg.bodies >= cfg.procs);
    let mut w = Workload::new(cfg.procs);
    let mut rng = Rng::new(cfg.seed);
    let owner = |b: usize| b % cfg.procs;
    let cells = tree_cells(cfg);
    let mut barrier = 0u16;
    let bar = |w: &mut Workload, barrier: &mut u16| {
        emit_flag_barrier(w, barrier, cfg.procs);
    };

    // Owners initialize their bodies.
    for b in 0..cfg.bodies {
        w.push(owner(b), MemOp::Write(BH_POS.block(b as u64)));
        w.push(owner(b), MemOp::Write(BH_ACC.block(b as u64)));
    }
    bar(&mut w, &mut barrier);

    for _step in 0..cfg.steps {
        // Phase 1: tree build on processor 0.
        for b in 0..cfg.bodies {
            w.push(0, MemOp::Read(BH_POS.block(b as u64)));
        }
        for c in 0..cells {
            w.push(0, MemOp::Write(BH_TREE.block(c as u64)));
        }
        bar(&mut w, &mut barrier);

        // Phase 2: force computation.
        for b in 0..cfg.bodies {
            let p = owner(b);
            for c in 0..TOP_CELLS.min(cells) {
                w.push(p, MemOp::Read(BH_TREE.block(c as u64)));
            }
            // Deterministic interaction subset (excluding self).
            for _ in 0..cfg.interactions {
                let mut other = rng.index(cfg.bodies);
                if other == b {
                    other = (other + 1) % cfg.bodies;
                }
                w.push(p, MemOp::Read(BH_POS.block(other as u64)));
            }
            w.push(p, MemOp::Compute(cfg.force_cost * cfg.interactions as u64));
            w.push(p, MemOp::Write(BH_ACC.block(b as u64)));
        }
        bar(&mut w, &mut barrier);

        // Phase 3: position update.
        for b in 0..cfg.bodies {
            let p = owner(b);
            w.push(p, MemOp::Read(BH_ACC.block(b as u64)));
            w.push(p, MemOp::Write(BH_POS.block(b as u64)));
        }
        bar(&mut w, &mut barrier);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let cfg = BarnesHutConfig { bodies: 32, steps: 2, procs: 8, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
    }

    #[test]
    fn phase_structure_counts() {
        let cfg = BarnesHutConfig {
            bodies: 16,
            steps: 1,
            procs: 4,
            interactions: 4,
            force_cost: 1,
            seed: 7,
        };
        let w = generate(&cfg);
        // Barriers: init + 3 per step.
        let barriers: usize = w
            .ops
            .iter()
            .map(|q| q.iter().filter(|o| matches!(o, MemOp::Barrier { .. })).count())
            .sum();
        assert_eq!(barriers, 4 * 4);
        // Position writes: init (16) + update phase (16).
        let pos_writes: usize = w
            .ops
            .iter()
            .flatten()
            .filter(|o| matches!(o, MemOp::Write(a) if a.0 >= BH_POS.block(0).0 && a.0 < BH_ACC.block(0).0))
            .count();
        assert_eq!(pos_writes, 32);
    }

    #[test]
    fn bodies_partitioned_round_robin() {
        let cfg = BarnesHutConfig { bodies: 16, steps: 1, procs: 4, ..Default::default() };
        let w = generate(&cfg);
        // Every processor gets work.
        assert!(w.ops.iter().all(|q| !q.is_empty()));
    }
}
