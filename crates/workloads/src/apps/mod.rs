//! Application kernels as deterministic op-stream generators.
//!
//! The paper's Table 6 applications, re-implemented as shared-memory
//! access-pattern kernels (see DESIGN.md, substitution 2): the generators
//! emit the same data layout, ownership partitioning, sharing structure
//! and barrier skeleton as the originals; arithmetic becomes `Compute`
//! ops. Addresses are block-granular (one 32-byte block per element
//! group), which is the granularity at which coherence — the thing under
//! study — operates.
//!
//! Shared regions are placed at disjoint block ranges so multiple kernels
//! can coexist in one address space.

pub mod apsp;
pub mod barnes_hut;
pub mod lu;

use crate::driver::Workload;
use wormdsm_coherence::Addr;

/// Names accepted by [`seeded`], canonical order.
pub const APP_NAMES: [&str; 3] = ["bh", "lu", "apsp"];

/// The three seeded applications (see [`APP_NAMES`]) with their compute
/// phases scaled up by `scale`. Base costs model a 1-FLOP/cycle node:
/// ~200 cycles per body-body force evaluation, ~1024 cycles per 8x8
/// block multiply-add (2·8³ FLOPs), ~256 cycles per 64-entry row
/// relaxation.
///
/// The generators are communication-extreme — they emit a shared-block
/// access every few operations, whereas real scientific codes retire
/// hundreds to thousands of compute cycles per coherence miss. The scale
/// factor restores that ratio; scale 1 is the busy-cycle regime the
/// golden references are recorded in. Problem sizes scale with the
/// machine only once it outgrows the reference sizes (64 bodies / 64x64
/// matrices), so every configuration up to 64 processors is
/// byte-identical to the historical fixed-size runs while larger meshes
/// stay valid (`bodies >= procs`, `n >= procs`).
///
/// Errors (rather than panics) on an unknown name: this is the parse
/// point for externally submitted app strings (CLI flags, farm jobs).
pub fn seeded(app: &str, procs: usize, scale: u64) -> Result<Workload, String> {
    match app {
        "bh" => Ok(barnes_hut::generate(&barnes_hut::BarnesHutConfig {
            procs,
            bodies: 64.max(procs),
            steps: 2,
            force_cost: 200 * scale,
            ..Default::default()
        })),
        "lu" => Ok(lu::generate(&lu::LuConfig { n: 64, block: 8, procs, flop_cost: 1024 * scale })),
        "apsp" => Ok(apsp::generate(&apsp::ApspConfig {
            n: 64.max(procs),
            procs,
            relax_cost: 256 * scale,
        })),
        other => Err(format!("unknown app {other:?} (expected one of {APP_NAMES:?})")),
    }
}

/// A contiguous block-granular array in shared memory.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// First block id of the region.
    pub base_block: u64,
}

impl Region {
    /// Address of the `i`-th block of the region (32-byte blocks).
    pub fn block(&self, i: u64) -> Addr {
        Addr((self.base_block + i) * 32)
    }
}

/// Region bases (block ids) for each application's arrays.
pub mod layout {
    use super::Region;

    /// Barnes-Hut body positions (one block per body).
    pub const BH_POS: Region = Region { base_block: 0x1_0000 };
    /// Barnes-Hut body accelerations.
    pub const BH_ACC: Region = Region { base_block: 0x2_0000 };
    /// Barnes-Hut tree cells.
    pub const BH_TREE: Region = Region { base_block: 0x3_0000 };
    /// LU matrix blocks.
    pub const LU_A: Region = Region { base_block: 0x4_0000 };
    /// APSP distance matrix rows.
    pub const APSP_D: Region = Region { base_block: 0x8_0000 };
    /// Barrier release flags (one block per barrier episode, shared by
    /// every participant).
    pub const SYNC_FLAGS: Region = Region { base_block: 0xC_0000 };
}

/// Emit one barrier episode with a shared-memory release flag.
///
/// Processor 0 (the master) first rewrites the *previous* episode's flag
/// — which every participant read after the previous barrier — producing
/// the wide `d ~ P-1` invalidation that flag-based synchronization causes
/// on real write-invalidate machines (spinning is modeled by the one
/// post-barrier read; op streams are static, so the magic barrier
/// provides the control synchronization). All three applications share
/// this skeleton.
pub(crate) fn emit_flag_barrier(w: &mut crate::driver::Workload, barrier: &mut u16, procs: usize) {
    use wormdsm_core::MemOp;
    let bid = *barrier;
    if bid > 0 {
        w.push(0, MemOp::Write(layout::SYNC_FLAGS.block(bid as u64 - 1)));
    }
    for p in 0..procs {
        w.push(p, MemOp::Barrier { id: bid, participants: procs as u32 });
    }
    for p in 0..procs {
        w.push(p, MemOp::Read(layout::SYNC_FLAGS.block(bid as u64)));
    }
    *barrier += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Coarse check: bases are ordered and far apart.
        let bases = [
            layout::BH_POS.base_block,
            layout::BH_ACC.base_block,
            layout::BH_TREE.base_block,
            layout::LU_A.base_block,
            layout::APSP_D.base_block,
        ];
        for w in bases.windows(2) {
            assert!(w[1] >= w[0] + 0x1_0000);
        }
    }

    #[test]
    fn region_addressing() {
        let r = Region { base_block: 10 };
        assert_eq!(r.block(0), Addr(320));
        assert_eq!(r.block(3), Addr(416));
    }
}
