//! Blocked dense LU factorization (SPLASH-2 LU kernel), 128x128 matrix
//! with 8x8 element blocks — the paper's exact problem size.
//!
//! The matrix is a `NB x NB` grid of 8x8 blocks (NB = 16), 2D-scattered
//! over processors. Each step `k`: the diagonal owner factorizes
//! `A[k][k]`; perimeter owners update row/column `k` blocks (reading the
//! diagonal — a multi-reader sharing pattern); interior owners update
//! `A[i][j] -= A[i][k] * A[k][j]` (reading two perimeter blocks each).
//! Barriers separate the three phases. Writes to perimeter blocks
//! invalidate the previous step's interior readers: moderate, clustered
//! invalidation sets.

use super::emit_flag_barrier;
use super::layout::LU_A;
use crate::driver::Workload;
use wormdsm_core::MemOp;

/// LU configuration.
#[derive(Debug, Clone, Copy)]
pub struct LuConfig {
    /// Matrix dimension in elements (128 in the paper).
    pub n: usize,
    /// Element block dimension (8 in the paper).
    pub block: usize,
    /// Processors.
    pub procs: usize,
    /// Compute cycles per 8x8 block multiply-add.
    pub flop_cost: u64,
}

impl Default for LuConfig {
    fn default() -> Self {
        Self { n: 128, block: 8, procs: 64, flop_cost: 64 }
    }
}

impl LuConfig {
    /// Blocks per matrix dimension.
    pub fn nb(&self) -> usize {
        self.n / self.block
    }

    /// 32-byte memory blocks per 8x8 double block (512 B).
    pub fn mem_blocks(&self) -> u64 {
        ((self.block * self.block * 8) as u64).div_ceil(32)
    }
}

/// 2D scatter ownership: block (i, j) belongs to processor
/// `(i % pr) * pc + (j % pc)` where `pr * pc = procs`.
fn owner(cfg: &LuConfig, i: usize, j: usize) -> usize {
    let pr = (cfg.procs as f64).sqrt() as usize;
    let pr = pr.max(1);
    let pc = cfg.procs / pr;
    (i % pr) * pc + (j % pc)
}

/// Generate the blocked-LU op streams.
pub fn generate(cfg: &LuConfig) -> Workload {
    assert_eq!(cfg.n % cfg.block, 0);
    let nb = cfg.nb();
    let mb = cfg.mem_blocks();
    let blk = |i: usize, j: usize, b: u64| LU_A.block(((i * nb + j) as u64) * mb + b);
    let mut w = Workload::new(cfg.procs);
    let mut barrier = 0u16;
    let bar = |w: &mut Workload, barrier: &mut u16| {
        emit_flag_barrier(w, barrier, cfg.procs);
    };

    // Initialization: owners write their blocks.
    for i in 0..nb {
        for j in 0..nb {
            let p = owner(cfg, i, j);
            for b in 0..mb {
                w.push(p, MemOp::Write(blk(i, j, b)));
            }
        }
    }
    bar(&mut w, &mut barrier);

    for k in 0..nb {
        // Phase 1: factorize the diagonal block.
        {
            let p = owner(cfg, k, k);
            for b in 0..mb {
                w.push(p, MemOp::Read(blk(k, k, b)));
            }
            w.push(p, MemOp::Compute(cfg.flop_cost * 2));
            for b in 0..mb {
                w.push(p, MemOp::Write(blk(k, k, b)));
            }
        }
        bar(&mut w, &mut barrier);

        // Phase 2: perimeter row and column.
        for t in k + 1..nb {
            for (i, j) in [(k, t), (t, k)] {
                let p = owner(cfg, i, j);
                for b in 0..mb {
                    w.push(p, MemOp::Read(blk(k, k, b))); // shared diagonal
                }
                for b in 0..mb {
                    w.push(p, MemOp::Read(blk(i, j, b)));
                }
                w.push(p, MemOp::Compute(cfg.flop_cost));
                for b in 0..mb {
                    w.push(p, MemOp::Write(blk(i, j, b)));
                }
            }
        }
        bar(&mut w, &mut barrier);

        // Phase 3: interior update.
        for i in k + 1..nb {
            for j in k + 1..nb {
                let p = owner(cfg, i, j);
                for b in 0..mb {
                    w.push(p, MemOp::Read(blk(i, k, b))); // shared perimeter
                }
                for b in 0..mb {
                    w.push(p, MemOp::Read(blk(k, j, b))); // shared perimeter
                }
                for b in 0..mb {
                    w.push(p, MemOp::Read(blk(i, j, b)));
                }
                w.push(p, MemOp::Compute(cfg.flop_cost));
                for b in 0..mb {
                    w.push(p, MemOp::Write(blk(i, j, b)));
                }
            }
        }
        bar(&mut w, &mut barrier);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_size_shape() {
        let cfg = LuConfig::default();
        assert_eq!(cfg.nb(), 16);
        assert_eq!(cfg.mem_blocks(), 16);
    }

    #[test]
    fn ownership_is_balanced_2d_scatter() {
        let cfg = LuConfig { n: 32, block: 8, procs: 16, flop_cost: 1 };
        let mut counts = vec![0usize; 16];
        for i in 0..cfg.nb() {
            for j in 0..cfg.nb() {
                counts[owner(&cfg, i, j)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn small_instance_generates_and_is_deterministic() {
        let cfg = LuConfig { n: 16, block: 8, procs: 4, flop_cost: 8 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
        assert!(a.total_ops() > 0);
        // Every processor participates in every barrier.
        let barriers_per_proc: Vec<usize> = a
            .ops
            .iter()
            .map(|q| q.iter().filter(|o| matches!(o, MemOp::Barrier { .. })).count())
            .collect();
        assert!(barriers_per_proc.windows(2).all(|w| w[0] == w[1]));
    }
}
