//! Workload representation and the execution driver.

use std::collections::VecDeque;
use wormdsm_core::{DsmSystem, MemOp, TxnProfiler};
use wormdsm_mesh::topology::NodeId;
use wormdsm_sim::Cycle;

/// One deterministic operation stream per processor.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Per-processor operation queues (index = node id).
    pub ops: Vec<VecDeque<MemOp>>,
}

impl Workload {
    /// Empty workload for `procs` processors.
    pub fn new(procs: usize) -> Self {
        Self { ops: vec![VecDeque::new(); procs] }
    }

    /// Append an op to processor `p`'s stream.
    pub fn push(&mut self, p: usize, op: MemOp) {
        self.ops[p].push_back(op);
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(|q| q.len()).sum()
    }

    /// Number of memory operations (reads + writes).
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .flatten()
            .filter(|op| matches!(op, MemOp::Read(_) | MemOp::Write(_)))
            .count()
    }

    /// Run this workload to completion on `sys`.
    ///
    /// Every cycle, each idle processor issues its next op. Returns the
    /// completion cycle and counts, or an error if `max_cycles` pass
    /// without finishing (deadlock / lost message).
    pub fn run(mut self, sys: &mut DsmSystem, max_cycles: Cycle) -> Result<RunResult, String> {
        assert_eq!(self.ops.len(), sys.config().nodes(), "one op stream per node");
        let start = sys.now();
        let deadline = start + max_cycles;
        let mut issued = 0u64;
        // Poll only processors that still have queued ops. The set is kept
        // in ascending node order and only ever shrinks, so issue order is
        // identical to sweeping every node each cycle.
        let ops = &mut self.ops;
        let mut runnable: Vec<usize> = (0..ops.len()).filter(|&p| !ops[p].is_empty()).collect();
        loop {
            // The promoted invariants record instead of panicking; a
            // workload run must not report numbers from a corrupted state.
            if let Some(v) = sys.invariant_violation() {
                return Err(format!("workload aborted: {v}"));
            }
            runnable.retain(|&p| {
                let node = NodeId(p as u16);
                if sys.proc_idle(node) {
                    let op = ops[p].pop_front().expect("runnable implies non-empty");
                    sys.issue(node, op);
                    issued += 1;
                }
                !ops[p].is_empty()
            });
            if runnable.is_empty() && sys.idle() {
                return Ok(RunResult { cycles: sys.now() - start, issued });
            }
            if sys.now() >= deadline {
                let left: usize = ops.iter().map(|q| q.len()).sum();
                return Err(format!(
                    "workload incomplete after {max_cycles} cycles: {issued} issued, {left} queued"
                ));
            }
            sys.step();
        }
    }

    /// [`Workload::run`] with latency-attribution profiling enabled for
    /// the duration of the run: attaches a record-keeping `TxnProfiler`
    /// (raising the trace level to `Flit`), runs to completion, and hands
    /// the detached profiler back alongside the result.
    ///
    /// Profiling is a pure observation layer, so the [`RunResult`] and
    /// every metric are bit-identical to an unprofiled run.
    pub fn run_profiled(
        self,
        sys: &mut DsmSystem,
        max_cycles: Cycle,
    ) -> Result<(RunResult, TxnProfiler), String> {
        sys.enable_profiling();
        let r = self.run(sys, max_cycles)?;
        let p = sys.take_profiler().expect("profiler attached above");
        Ok((r, p))
    }
}

/// Outcome of a completed workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles from start to everything idle.
    pub cycles: Cycle,
    /// Operations issued.
    pub issued: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormdsm_coherence::Addr;
    use wormdsm_core::{SchemeKind, SystemConfig};

    fn sys() -> DsmSystem {
        DsmSystem::new(SystemConfig::for_scheme(4, SchemeKind::UiUa), SchemeKind::UiUa.build())
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let mut s = sys();
        let r = Workload::new(16).run(&mut s, 1000).unwrap();
        assert_eq!(r.issued, 0);
    }

    #[test]
    fn counts_ops() {
        let mut w = Workload::new(16);
        w.push(0, MemOp::Read(Addr(0)));
        w.push(0, MemOp::Compute(10));
        w.push(3, MemOp::Write(Addr(64)));
        assert_eq!(w.total_ops(), 3);
        assert_eq!(w.mem_ops(), 2);
    }

    #[test]
    fn runs_simple_sharing_pattern() {
        let mut w = Workload::new(16);
        // Everyone reads block 1, then node 0 writes it.
        for p in 1..16 {
            w.push(p, MemOp::Read(Addr(32)));
            w.push(p, MemOp::Barrier { id: 0, participants: 16 });
        }
        w.push(0, MemOp::Barrier { id: 0, participants: 16 });
        w.push(0, MemOp::Write(Addr(32)));
        let mut s = sys();
        let r = w.run(&mut s, 500_000).unwrap();
        assert_eq!(r.issued, 15 * 2 + 2);
        assert_eq!(s.metrics().inval_txns, 1);
        // Block 32 is homed at node 1, which is itself a reader: its copy
        // is invalidated locally, leaving 14 remote sharers.
        assert_eq!(s.metrics().inval_set_size.summary().mean(), 14.0);
    }

    #[test]
    fn run_profiled_attributes_every_invalidation() {
        let mut w = Workload::new(16);
        for p in 1..16 {
            w.push(p, MemOp::Read(Addr(32)));
            w.push(p, MemOp::Barrier { id: 0, participants: 16 });
        }
        w.push(0, MemOp::Barrier { id: 0, participants: 16 });
        w.push(0, MemOp::Write(Addr(32)));
        let mut s = sys();
        let (_, p) = w.run_profiled(&mut s, 500_000).unwrap();
        assert_eq!(p.closed(), s.metrics().inval_txns);
        assert_eq!(p.latency_total() as f64, s.metrics().inval_latency.sum());
        p.verify_exact().unwrap();
        assert!(s.profiler().is_none(), "profiler is handed back, not left attached");
    }

    #[test]
    fn invariant_violation_aborts_the_run() {
        use wormdsm_coherence::ProtoMsg;
        use wormdsm_mesh::TxnId;
        let mut s = sys();
        // A forged ack for a transaction that never existed trips the
        // dead-transaction invariant; the driver must refuse to report
        // numbers from the corrupted run.
        s.debug_deliver(
            NodeId(0),
            ProtoMsg::InvAck { block: wormdsm_coherence::BlockId(0), txn: TxnId(42), count: 1 },
            1,
            NodeId(5),
        );
        let mut w = Workload::new(16);
        w.push(0, MemOp::Compute(10));
        let e = w.run(&mut s, 10_000).unwrap_err();
        assert!(e.contains("workload aborted"), "{e}");
        assert!(e.contains("dead transaction"), "{e}");
    }

    #[test]
    fn timeout_reports_error() {
        let mut w = Workload::new(16);
        // A lock that is never released stalls node 1 forever.
        w.push(0, MemOp::Lock(1));
        w.push(1, MemOp::Lock(1));
        let mut s = sys();
        let e = w.run(&mut s, 10_000).unwrap_err();
        assert!(e.contains("incomplete"), "{e}");
    }
}
