//! Workload representation and the execution driver.
//!
//! Issuance is cursor-based: a [`Workload`] is an immutable set of op
//! streams, and all run progress lives in an [`IssueState`] (per-processor
//! cursors + issued count). That split is what makes runs *resumable* and
//! *replayable*: an `IssueState` plus a [`wormdsm_core::DsmSystem`]
//! snapshot is a complete checkpoint ([`Workload::checkpoint`] /
//! [`Workload::resume`]), and the windowed speculative driver
//! ([`Workload::run_windowed`]) rolls a poisoned window back simply by
//! restoring both and re-running the same cycles serially.

use std::collections::VecDeque;
use wormdsm_core::{DsmSystem, InvalidationScheme, MemOp, SpecMode, SystemConfig, TxnProfiler};
use wormdsm_mesh::topology::NodeId;
use wormdsm_sim::snap::{SnapError, SnapReader, SnapWriter};
use wormdsm_sim::Cycle;

/// One deterministic operation stream per processor.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Per-processor operation queues (index = node id).
    pub ops: Vec<VecDeque<MemOp>>,
}

/// Issue-side progress of a run: how far into each processor's op stream
/// the driver has issued. Together with a [`DsmSystem::save_snapshot`]
/// stream this is everything needed to resume or replay a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueState {
    /// Next un-issued op per processor (index = node id).
    cursors: Vec<usize>,
    /// Operations issued so far.
    issued: u64,
}

impl IssueState {
    /// Operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Serialize into a snapshot stream.
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.cursors.len());
        for &c in &self.cursors {
            w.put_usize(c);
        }
        w.put_u64(self.issued);
    }

    /// Rebuild from a snapshot stream.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut cursors = Vec::with_capacity(n);
        for _ in 0..n {
            cursors.push(r.get_usize()?);
        }
        Ok(Self { cursors, issued: r.get_u64()? })
    }
}

/// Outcome counters of a windowed speculative run
/// ([`Workload::run_windowed`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Windows executed (committed + rolled back).
    pub windows: u64,
    /// Windows whose Detect-mode pass stayed clean and were committed.
    pub committed: u64,
    /// Windows rolled back to their entry snapshot and replayed serially.
    pub rolled_back: u64,
    /// Cycles re-executed on the serial schedule by those rollbacks.
    pub replayed_cycles: u64,
}

impl Workload {
    /// Empty workload for `procs` processors.
    pub fn new(procs: usize) -> Self {
        Self { ops: vec![VecDeque::new(); procs] }
    }

    /// Append an op to processor `p`'s stream.
    pub fn push(&mut self, p: usize, op: MemOp) {
        self.ops[p].push_back(op);
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(|q| q.len()).sum()
    }

    /// Number of memory operations (reads + writes).
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .flatten()
            .filter(|op| matches!(op, MemOp::Read(_) | MemOp::Write(_)))
            .count()
    }

    /// Fresh issue state: nothing issued yet.
    pub fn start(&self) -> IssueState {
        IssueState { cursors: vec![0; self.ops.len()], issued: 0 }
    }

    /// Drive the system until the workload completes or the clock passes
    /// `stop_at` (inclusive: the issue pass at cycle `stop_at` still
    /// runs, then one step carries the clock past it).
    ///
    /// Exactly one issue pass runs per simulated cycle no matter how the
    /// run is sliced into `advance` calls — re-entering at the cycle a
    /// previous call stopped on does not re-issue — so a run chopped into
    /// windows is bit-identical to one uninterrupted call. Returns `true`
    /// when every op has issued and the system is idle.
    fn advance(
        &self,
        sys: &mut DsmSystem,
        st: &mut IssueState,
        stop_at: Cycle,
    ) -> Result<bool, String> {
        assert_eq!(self.ops.len(), sys.config().nodes(), "one op stream per node");
        assert_eq!(st.cursors.len(), self.ops.len(), "issue state matches this workload");
        // Poll only processors that still have queued ops. The set is kept
        // in ascending node order and only ever shrinks, so issue order is
        // identical to sweeping every node each cycle.
        let mut runnable: Vec<usize> =
            (0..self.ops.len()).filter(|&p| st.cursors[p] < self.ops[p].len()).collect();
        loop {
            // The promoted invariants record instead of panicking; a
            // workload run must not report numbers from a corrupted state.
            if let Some(v) = sys.invariant_violation() {
                return Err(format!("workload aborted: {v}"));
            }
            if sys.now() > stop_at {
                return Ok(false);
            }
            runnable.retain(|&p| {
                let node = NodeId(p as u16);
                if sys.proc_idle(node) {
                    let op = self.ops[p][st.cursors[p]];
                    st.cursors[p] += 1;
                    sys.issue(node, op);
                    st.issued += 1;
                }
                st.cursors[p] < self.ops[p].len()
            });
            if runnable.is_empty() && sys.idle() {
                return Ok(true);
            }
            sys.step();
        }
    }

    /// Run this workload to completion on `sys`.
    ///
    /// Every cycle, each idle processor issues its next op. Returns the
    /// completion cycle and counts, or an error if `max_cycles` pass
    /// without finishing (deadlock / lost message).
    pub fn run(&self, sys: &mut DsmSystem, max_cycles: Cycle) -> Result<RunResult, String> {
        let mut st = self.start();
        self.run_from(sys, &mut st, max_cycles)
    }

    /// Continue a run from an existing [`IssueState`] (fresh from
    /// [`Workload::start`], or restored by [`Workload::resume`]).
    ///
    /// `RunResult::cycles` counts cycles spent in *this* call;
    /// `RunResult::issued` is the state's lifetime total, so a resumed
    /// run reports the same count the uninterrupted run would.
    pub fn run_from(
        &self,
        sys: &mut DsmSystem,
        st: &mut IssueState,
        max_cycles: Cycle,
    ) -> Result<RunResult, String> {
        let start = sys.now();
        if self.advance(sys, st, start + max_cycles)? {
            Ok(RunResult { cycles: sys.now() - start, issued: st.issued })
        } else {
            let left = self.total_ops() as u64 - st.issued;
            Err(format!(
                "workload incomplete after {max_cycles} cycles: {} issued, {left} queued",
                st.issued
            ))
        }
    }

    /// Run to completion with W-cycle speculative windows.
    ///
    /// The per-cycle engine is put in [`SpecMode::Detect`]: parallel
    /// passes commit unconditionally and latch a poison flag when a
    /// speculation assumption was violated. Every `window` cycles the
    /// driver takes a full-system snapshot; a window that ends poisoned
    /// is rolled back to its entry snapshot (system **and** issue
    /// cursors) and re-run on the serial one-tile schedule, which is
    /// exact by construction. Clean windows commit with zero rollback
    /// work — the multi-cycle analogue of the per-cycle optimistic tick,
    /// amortizing validation over W cycles.
    ///
    /// Final state is bit-identical to a serial run. The entry
    /// speculation mode and tile count are restored before returning.
    /// Rollbacks rebuild the network from the snapshot, so flight-
    /// recorder history does not survive them (results are unaffected).
    pub fn run_windowed(
        &self,
        sys: &mut DsmSystem,
        max_cycles: Cycle,
        window: Cycle,
    ) -> Result<(RunResult, WindowStats), String> {
        assert!(window >= 1, "window must be at least one cycle");
        let start = sys.now();
        let deadline = start + max_cycles;
        let tiles = sys.tiles();
        let entry_mode = sys.spec_mode();
        sys.set_spec_mode(SpecMode::Detect);
        let mut st = self.start();
        let mut ws = WindowStats::default();
        let result = loop {
            let w_start = sys.now();
            let stop = (w_start + window - 1).min(deadline);
            let snap = sys.save_snapshot();
            let st_ck = st.clone();
            sys.clear_spec_poisoned();
            let done = match self.advance(sys, &mut st, stop) {
                Ok(d) => d,
                Err(e) => break Err(e),
            };
            ws.windows += 1;
            let done = if sys.spec_poisoned() {
                ws.rolled_back += 1;
                if let Err(e) = sys.restore_snapshot_in_place(&snap) {
                    break Err(format!("window rollback failed: {e}"));
                }
                st = st_ck;
                sys.set_tiles(1);
                sys.clear_spec_poisoned();
                let replayed = match self.advance(sys, &mut st, stop) {
                    Ok(d) => d,
                    Err(e) => break Err(e),
                };
                ws.replayed_cycles += sys.now() - w_start;
                sys.set_tiles(tiles);
                replayed
            } else {
                ws.committed += 1;
                done
            };
            if done {
                break Ok(RunResult { cycles: sys.now() - start, issued: st.issued });
            }
            if sys.now() > deadline {
                let left = self.total_ops() as u64 - st.issued;
                break Err(format!(
                    "workload incomplete after {max_cycles} cycles: {} issued, {left} queued",
                    st.issued
                ));
            }
        };
        sys.set_spec_mode(entry_mode);
        result.map(|r| (r, ws))
    }

    /// Run toward completion in `every`-cycle observation windows, giving
    /// `observer` control at each window boundary — the driver hook for
    /// live telemetry (progress reporting, event draining, shutdown
    /// polling) that must not touch the issue path.
    ///
    /// At each boundary the observer sees the system *before* that
    /// cycle's issue pass — the same point [`Workload::checkpoint`]
    /// captures — and returns `true` to keep running or `false` to pause;
    /// a pause returns `Ok(None)` with `st` holding exactly the progress
    /// an uninterrupted run would have at that cycle, so the caller can
    /// checkpoint and later continue with [`Workload::run_from`] (or
    /// another `run_observed`) bit-identically. Completion returns
    /// `Ok(Some(result))` with `cycles` counting this call only and
    /// `issued` the state's lifetime total, matching
    /// [`Workload::run_from`].
    ///
    /// The observer may read anything (metrics, probes, the recorder) and
    /// may mutate pure observation layers — attach taps, drain probe
    /// windows — but must leave simulated state alone; the determinism
    /// tests pin that contract.
    pub fn run_observed(
        &self,
        sys: &mut DsmSystem,
        st: &mut IssueState,
        max_cycles: Cycle,
        every: Cycle,
        mut observer: impl FnMut(&mut DsmSystem, &IssueState) -> bool,
    ) -> Result<Option<RunResult>, String> {
        assert!(every >= 1, "observation interval must be at least one cycle");
        let start = sys.now();
        let deadline = start + max_cycles;
        loop {
            let stop = (sys.now() + every - 1).min(deadline);
            if self.advance(sys, st, stop)? {
                return Ok(Some(RunResult { cycles: sys.now() - start, issued: st.issued }));
            }
            if sys.now() > deadline {
                let left = self.total_ops() as u64 - st.issued;
                return Err(format!(
                    "workload incomplete after {max_cycles} cycles: {} issued, {left} queued",
                    st.issued
                ));
            }
            if !observer(sys, st) {
                return Ok(None);
            }
        }
    }

    /// Run to completion, handing a resumable checkpoint to `sink` every
    /// `every` cycles (the bench driver's `--snapshot-every`). The
    /// checkpoint at a boundary captures the state *before* that cycle's
    /// issue pass, so resuming it replays the remainder bit-identically.
    /// A thin wrapper over [`Workload::run_observed`] whose observer
    /// always continues.
    pub fn run_checkpointed(
        &self,
        sys: &mut DsmSystem,
        max_cycles: Cycle,
        every: Cycle,
        mut sink: impl FnMut(Cycle, Vec<u8>),
    ) -> Result<RunResult, String> {
        assert!(every >= 1, "checkpoint interval must be at least one cycle");
        let mut st = self.start();
        let r = self.run_observed(sys, &mut st, max_cycles, every, |sys, st| {
            sink(sys.now(), Self::checkpoint(sys, st));
            true
        })?;
        Ok(r.expect("observer never pauses"))
    }

    /// Serialize a resumable checkpoint: the full system snapshot plus
    /// the run's issue state, one sealed stream.
    pub fn checkpoint(sys: &mut DsmSystem, st: &IssueState) -> Vec<u8> {
        let mut w = SnapWriter::new();
        let sys_bytes = sys.save_snapshot();
        w.put_usize(sys_bytes.len());
        w.put_bytes(&sys_bytes);
        st.save(&mut w);
        w.finish()
    }

    /// Rebuild a system and issue state from [`Workload::checkpoint`]
    /// bytes. `cfg` and `scheme` must match the checkpointing run (the
    /// system snapshot's fingerprint enforces it), and the checkpoint's
    /// cursors must fit this workload's op streams. Continue with
    /// [`Workload::run_from`].
    pub fn resume(
        &self,
        cfg: SystemConfig,
        scheme: Box<dyn InvalidationScheme>,
        bytes: &[u8],
    ) -> Result<(DsmSystem, IssueState), String> {
        let mut r = SnapReader::new(bytes).map_err(|e| e.to_string())?;
        let n = r.get_len().map_err(|e| e.to_string())?;
        let sys_bytes = r.get_bytes(n).map_err(|e| e.to_string())?.to_vec();
        let st = IssueState::load(&mut r).map_err(|e| e.to_string())?;
        let sys =
            DsmSystem::restore_snapshot(cfg, scheme, &sys_bytes).map_err(|e| e.to_string())?;
        if st.cursors.len() != self.ops.len() {
            return Err(format!(
                "checkpoint has {} op streams, workload has {}",
                st.cursors.len(),
                self.ops.len()
            ));
        }
        for (p, (&c, q)) in st.cursors.iter().zip(&self.ops).enumerate() {
            if c > q.len() {
                return Err(format!(
                    "checkpoint cursor {c} exceeds processor {p}'s {} ops",
                    q.len()
                ));
            }
        }
        Ok((sys, st))
    }

    /// [`Workload::run`] with latency-attribution profiling enabled for
    /// the duration of the run: attaches a record-keeping `TxnProfiler`
    /// (raising the trace level to `Flit`), runs to completion, and hands
    /// the detached profiler back alongside the result.
    ///
    /// Profiling is a pure observation layer, so the [`RunResult`] and
    /// every metric are bit-identical to an unprofiled run.
    pub fn run_profiled(
        &self,
        sys: &mut DsmSystem,
        max_cycles: Cycle,
    ) -> Result<(RunResult, TxnProfiler), String> {
        sys.enable_profiling();
        let r = self.run(sys, max_cycles)?;
        let p = sys.take_profiler().expect("profiler attached above");
        Ok((r, p))
    }
}

/// Outcome of a completed workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles from start to everything idle.
    pub cycles: Cycle,
    /// Operations issued.
    pub issued: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormdsm_coherence::Addr;
    use wormdsm_core::{SchemeKind, SystemConfig};

    fn sys() -> DsmSystem {
        DsmSystem::new(SystemConfig::for_scheme(4, SchemeKind::UiUa), SchemeKind::UiUa.build())
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let mut s = sys();
        let r = Workload::new(16).run(&mut s, 1000).unwrap();
        assert_eq!(r.issued, 0);
    }

    #[test]
    fn counts_ops() {
        let mut w = Workload::new(16);
        w.push(0, MemOp::Read(Addr(0)));
        w.push(0, MemOp::Compute(10));
        w.push(3, MemOp::Write(Addr(64)));
        assert_eq!(w.total_ops(), 3);
        assert_eq!(w.mem_ops(), 2);
    }

    fn sharing_workload() -> Workload {
        let mut w = Workload::new(16);
        // Everyone reads block 1, then node 0 writes it.
        for p in 1..16 {
            w.push(p, MemOp::Read(Addr(32)));
            w.push(p, MemOp::Barrier { id: 0, participants: 16 });
        }
        w.push(0, MemOp::Barrier { id: 0, participants: 16 });
        w.push(0, MemOp::Write(Addr(32)));
        w
    }

    #[test]
    fn runs_simple_sharing_pattern() {
        let w = sharing_workload();
        let mut s = sys();
        let r = w.run(&mut s, 500_000).unwrap();
        assert_eq!(r.issued, 15 * 2 + 2);
        assert_eq!(s.metrics().inval_txns, 1);
        // Block 32 is homed at node 1, which is itself a reader: its copy
        // is invalidated locally, leaving 14 remote sharers.
        assert_eq!(s.metrics().inval_set_size.summary().mean(), 14.0);
    }

    #[test]
    fn run_profiled_attributes_every_invalidation() {
        let w = sharing_workload();
        let mut s = sys();
        let (_, p) = w.run_profiled(&mut s, 500_000).unwrap();
        assert_eq!(p.closed(), s.metrics().inval_txns);
        assert_eq!(p.latency_total() as f64, s.metrics().inval_latency.sum());
        p.verify_exact().unwrap();
        assert!(s.profiler().is_none(), "profiler is handed back, not left attached");
    }

    /// Chopping a run into many tiny `advance` windows must not change a
    /// single result: exactly one issue pass per simulated cycle.
    #[test]
    fn sliced_run_is_bit_identical_to_uninterrupted() {
        let w = sharing_workload();
        let mut whole = sys();
        let r_whole = w.run(&mut whole, 500_000).unwrap();

        let mut sliced = sys();
        let mut st = w.start();
        let mut done = false;
        while !done {
            let stop = sliced.now() + 6; // awkward non-divisor slice width
            done = w.advance(&mut sliced, &mut st, stop).unwrap();
        }
        assert_eq!(st.issued, r_whole.issued);
        assert_eq!(sliced.now(), whole.now());
        assert_eq!(sliced.export_metrics().to_json(), whole.export_metrics().to_json());
    }

    /// A run paused by the observer and continued — in the same process
    /// or from a checkpoint taken at the pause point — must be
    /// bit-identical to the uninterrupted run. This is the farm's
    /// graceful-shutdown contract.
    #[test]
    fn observed_pause_and_resume_is_bit_identical() {
        let w = sharing_workload();
        let mut whole = sys();
        let r_whole = w.run(&mut whole, 500_000).unwrap();

        // Pause after 3 boundaries, checkpoint, then finish both the
        // live system and a system rebuilt from the checkpoint.
        let mut live = sys();
        let mut st = w.start();
        let mut boundaries = 0;
        let paused = w
            .run_observed(&mut live, &mut st, 500_000, 50, |_, _| {
                boundaries += 1;
                boundaries < 3
            })
            .unwrap();
        assert!(paused.is_none(), "observer paused the run");
        assert_eq!(boundaries, 3);
        assert!(st.issued() > 0 && st.issued() < r_whole.issued, "paused mid-run");
        let bytes = Workload::checkpoint(&mut live, &st);

        let r_live = w.run_from(&mut live, &mut st, 500_000).unwrap();
        assert_eq!(r_live.issued, r_whole.issued);
        assert_eq!(live.export_metrics().to_json(), whole.export_metrics().to_json());

        let cfg = SystemConfig::for_scheme(4, SchemeKind::UiUa);
        let (mut rebuilt, mut st2) = w.resume(cfg, SchemeKind::UiUa.build(), &bytes).unwrap();
        let mut observed = 0;
        let r2 = w
            .run_observed(&mut rebuilt, &mut st2, 500_000, 50, |sys, st| {
                // Observer reads are free; progress is monotone.
                assert!(st.issued() <= w.total_ops() as u64);
                assert!(sys.now() > 0);
                observed += 1;
                true
            })
            .unwrap()
            .expect("runs to completion");
        assert!(observed >= 1, "completion crossed at least one boundary");
        assert_eq!(r2.issued, r_whole.issued);
        assert_eq!(rebuilt.now(), whole.now());
        assert_eq!(rebuilt.export_metrics().to_json(), whole.export_metrics().to_json());
    }

    /// The checkpoint/resume pair must reproduce the uninterrupted run's
    /// final state bit for bit, including metrics accumulated before the
    /// checkpoint.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let w = sharing_workload();
        let mut whole = sys();
        let r_whole = w.run(&mut whole, 500_000).unwrap();

        let mut first = sys();
        let mut taken = Vec::new();
        let r = w
            .run_checkpointed(&mut first, 500_000, 100, |at, bytes| taken.push((at, bytes)))
            .unwrap();
        assert_eq!(r.cycles, r_whole.cycles);
        assert!(!taken.is_empty(), "run long enough to checkpoint");

        let (at, bytes) = &taken[taken.len() / 2];
        let cfg = SystemConfig::for_scheme(4, SchemeKind::UiUa);
        let (mut resumed, mut st) = w.resume(cfg, SchemeKind::UiUa.build(), bytes).unwrap();
        assert_eq!(resumed.now(), *at);
        let rr = w.run_from(&mut resumed, &mut st, 500_000).unwrap();
        assert_eq!(rr.issued, r_whole.issued);
        assert_eq!(resumed.now(), whole.now());
        assert_eq!(resumed.export_metrics().to_json(), whole.export_metrics().to_json());
    }

    /// Windowed speculative execution on a single-tile system never rolls
    /// back (the serial schedule speculates nothing) and matches the
    /// plain run exactly.
    #[test]
    fn windowed_run_matches_plain_run() {
        let w = sharing_workload();
        let mut plain = sys();
        let r_plain = w.run(&mut plain, 500_000).unwrap();

        let mut windowed = sys();
        let (r, ws) = w.run_windowed(&mut windowed, 500_000, 64).unwrap();
        assert_eq!(r.cycles, r_plain.cycles);
        assert_eq!(r.issued, r_plain.issued);
        assert_eq!(ws.rolled_back, 0, "serial tick engine cannot mis-speculate");
        assert_eq!(ws.windows, ws.committed);
        assert!(ws.windows >= 2, "run spans multiple windows");
        assert_eq!(windowed.export_metrics().to_json(), plain.export_metrics().to_json());
        assert_eq!(windowed.spec_mode(), SpecMode::Optimistic, "entry mode restored");
    }

    #[test]
    fn invariant_violation_aborts_the_run() {
        use wormdsm_coherence::ProtoMsg;
        use wormdsm_mesh::TxnId;
        let mut s = sys();
        // A forged ack for a transaction that never existed trips the
        // dead-transaction invariant; the driver must refuse to report
        // numbers from the corrupted run.
        s.debug_deliver(
            NodeId(0),
            ProtoMsg::InvAck { block: wormdsm_coherence::BlockId(0), txn: TxnId(42), count: 1 },
            1,
            NodeId(5),
        );
        let mut w = Workload::new(16);
        w.push(0, MemOp::Compute(10));
        let e = w.run(&mut s, 10_000).unwrap_err();
        assert!(e.contains("workload aborted"), "{e}");
        assert!(e.contains("dead transaction"), "{e}");
    }

    #[test]
    fn timeout_reports_error() {
        let mut w = Workload::new(16);
        // A lock that is never released stalls node 1 forever.
        w.push(0, MemOp::Lock(1));
        w.push(1, MemOp::Lock(1));
        let mut s = sys();
        let e = w.run(&mut s, 10_000).unwrap_err();
        assert!(e.contains("incomplete"), "{e}");
    }
}
