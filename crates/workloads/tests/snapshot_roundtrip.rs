//! End-to-end snapshot/resume round trips at the DSM level: a run saved
//! mid-flight, restored into a *fresh* [`DsmSystem`], and driven to
//! completion must land on the uninterrupted run bit for bit — same
//! final cycle, same issued count, same exported metrics JSON — across
//! schemes with very different in-flight machinery (unicast UI-UA vs.
//! multidestination MI-MA(col) with i-reserve/i-gather worms) and across
//! applications with different sharing structure.

use wormdsm_core::{DsmSystem, SchemeKind, SystemConfig};
use wormdsm_workloads::apps::barnes_hut::{self, BarnesHutConfig};
use wormdsm_workloads::apps::lu::{self, LuConfig};
use wormdsm_workloads::Workload;

/// The bench harness's busy-cycle (scale 1) app configurations, sized
/// for a 4x4 mesh so the matrix stays debug-test fast.
fn app_workload(app: &str, procs: usize) -> Workload {
    match app {
        "bh" => barnes_hut::generate(&BarnesHutConfig {
            procs,
            bodies: 64,
            steps: 2,
            force_cost: 200,
            ..Default::default()
        }),
        "lu" => lu::generate(&LuConfig { n: 64, block: 8, procs, flop_cost: 1024 }),
        other => panic!("unknown app {other}"),
    }
}

/// Save mid-run, restore into a fresh system, finish, compare bit for bit.
fn roundtrip(app: &str, scheme: SchemeKind) {
    const MAX: u64 = 50_000_000;
    let k = 4;
    let w = app_workload(app, k * k);
    let cfg = SystemConfig::for_scheme(k, scheme);

    let mut whole = DsmSystem::new(cfg.clone(), scheme.build());
    let r_whole = w.run(&mut whole, MAX).unwrap();

    // Checkpoint roughly every seventh of the run; the checkpointing run
    // itself must not perturb anything.
    let mut first = DsmSystem::new(cfg.clone(), scheme.build());
    let mut taken = Vec::new();
    let every = (r_whole.cycles / 7).max(1);
    let r_first =
        w.run_checkpointed(&mut first, MAX, every, |at, bytes| taken.push((at, bytes))).unwrap();
    assert_eq!(r_first.cycles, r_whole.cycles, "{app}/{scheme:?}: checkpointing perturbed the run");
    assert_eq!(
        first.export_metrics().to_json(),
        whole.export_metrics().to_json(),
        "{app}/{scheme:?}: checkpointing perturbed the metrics"
    );
    assert!(taken.len() >= 3, "{app}/{scheme:?}: run long enough to checkpoint mid-flight");

    // Resume from a mid-run checkpoint into a brand-new system.
    let (at, bytes) = &taken[taken.len() / 2];
    let (mut resumed, mut st) = w.resume(cfg, scheme.build(), bytes).unwrap();
    assert_eq!(resumed.now(), *at, "{app}/{scheme:?}: restore lands on the checkpoint cycle");
    let rr = w.run_from(&mut resumed, &mut st, MAX).unwrap();
    assert_eq!(rr.issued, r_whole.issued, "{app}/{scheme:?}: resumed run issued count");
    assert_eq!(resumed.now(), whole.now(), "{app}/{scheme:?}: resumed run final cycle");
    assert_eq!(
        resumed.export_metrics().to_json(),
        whole.export_metrics().to_json(),
        "{app}/{scheme:?}: resumed run metrics diverged"
    );
    resumed.verify_coherence().unwrap();
}

#[test]
fn bh_uiua_snapshot_roundtrip() {
    roundtrip("bh", SchemeKind::UiUa);
}

#[test]
fn bh_mimacol_snapshot_roundtrip() {
    roundtrip("bh", SchemeKind::MiMaCol);
}

#[test]
fn lu_uiua_snapshot_roundtrip() {
    roundtrip("lu", SchemeKind::UiUa);
}

#[test]
fn lu_mimacol_snapshot_roundtrip() {
    roundtrip("lu", SchemeKind::MiMaCol);
}

/// A checkpoint is rejected, not misapplied, when fed to a mismatched
/// configuration: the snapshot's config fingerprint must gate the restore.
#[test]
fn mismatched_config_is_rejected() {
    let k = 4;
    let w = app_workload("bh", k * k);
    let cfg = SystemConfig::for_scheme(k, SchemeKind::UiUa);
    let mut sys = DsmSystem::new(cfg, SchemeKind::UiUa.build());
    let mut taken = Vec::new();
    w.run_checkpointed(&mut sys, 50_000_000, 10_000, |at, bytes| taken.push((at, bytes))).unwrap();
    let (_, bytes) = &taken[0];
    let other = SystemConfig::for_scheme(8, SchemeKind::UiUa);
    let w8 = app_workload("bh", 64);
    match w8.resume(other, SchemeKind::UiUa.build(), bytes) {
        Err(e) => assert!(!e.is_empty()),
        Ok(_) => panic!("restore into a mismatched configuration must fail"),
    }
}
