//! Dissect what each grouping scheme plans for one sharer pattern:
//! the worms it sends, the per-sharer acknowledgement actions, and the
//! closed-form cost estimate — without running the simulator.
//!
//! Run with: `cargo run --release --example scheme_anatomy`

use wormdsm::analytic::{estimate_invalidation, NetParams};
use wormdsm::core::plan::AckAction;
use wormdsm::core::SchemeKind;
use wormdsm::mesh::render::render_worms;
use wormdsm::mesh::topology::Mesh2D;

fn main() {
    let mesh = Mesh2D::square(8);
    let home = mesh.node_at(2, 4);
    let sharers: Vec<_> = [(0, 1), (0, 6), (4, 2), (4, 6), (6, 3), (7, 3)]
        .iter()
        .map(|&(x, y)| mesh.node_at(x, y))
        .collect();
    println!("home {home} at (2,4); sharers at (0,1) (0,6) (4,2) (4,6) (6,3) (7,3)\n");

    for scheme in SchemeKind::ALL {
        let s = scheme.build();
        let plan = s.plan(&mesh, home, &sharers);
        println!("=== {} ===", scheme.name());
        for (i, w) in plan.request_worms.iter().enumerate() {
            let kind = if w.relay { "relay" } else { "inval" };
            let dests: Vec<String> = w
                .dests
                .iter()
                .enumerate()
                .map(|(j, d)| {
                    let c = mesh.coord(*d);
                    let wp = w.deliver.as_ref().is_some_and(|m| !m[j]);
                    format!("({},{}){}", c.x, c.y, if wp { "*" } else { "" })
                })
                .collect();
            println!(
                "  worm {i} [{kind}{}]: {}",
                if w.reserve_iack { "+reserve" } else { "" },
                dests.join(" -> ")
            );
        }
        // Picture of the request-phase worms (S = home, D = delivery,
        // w = routing waypoint, digits = worm paths).
        let rule = scheme.natural_routing().request_rule();
        let worm_views: Vec<(&[_], Option<&[bool]>)> =
            plan.request_worms.iter().map(|w| (w.dests.as_slice(), w.deliver.as_deref())).collect();
        if let Ok(pic) = render_worms(&mesh, rule, home, &worm_views) {
            for line in pic.lines() {
                println!("    {line}");
            }
        }
        let (mut unicasts, mut posts, mut gathers) = (0, 0, 0);
        for (_, a) in &plan.actions {
            match a {
                AckAction::Unicast => unicasts += 1,
                AckAction::Post => posts += 1,
                AckAction::InitGather(_) => gathers += 1,
            }
        }
        println!(
            "  acks: {unicasts} unicast, {posts} posted, {gathers} gather initiators, {} sweeps",
            plan.triggers.len()
        );
        let e = estimate_invalidation(
            &NetParams::default(),
            &mesh,
            scheme.natural_routing(),
            s.as_ref(),
            home,
            &sharers,
        );
        println!(
            "  analytic: home {}+{} msgs, {} total, {} flit-hops, ~{:.0} cycles\n",
            e.home_sends, e.home_recvs, e.total_msgs, e.traffic_flit_hops, e.latency
        );
    }
    println!("(* = non-delivering routing waypoint)");
}
