//! Quickstart: one invalidation transaction, two schemes, side by side.
//!
//! Builds an 8x8-mesh DSM, seeds a block shared by six scattered nodes,
//! and lets one node write it — once under the UI-UA baseline (2d unicast
//! messages through the home) and once under MI-MA(col) (multidestination
//! i-reserve worms + i-gather acknowledgements).
//!
//! Run with: `cargo run --release --example quickstart`

use wormdsm::coherence::Addr;
use wormdsm::core::{DsmSystem, MemOp, SchemeKind, SystemConfig};
use wormdsm::mesh::topology::Mesh2D;

fn main() {
    let k = 8;
    let mesh = Mesh2D::square(k);
    let sharers: Vec<_> = [(1, 2), (1, 5), (3, 1), (3, 3), (5, 6), (6, 2)]
        .iter()
        .map(|&(x, y)| mesh.node_at(x, y))
        .collect();
    let writer = mesh.node_at(7, 0);
    let addr = Addr(0); // block 0, homed at node 0 = (0,0)

    println!("8x8 mesh, block homed at (0,0), 6 sharers, writer at (7,0)\n");
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>10}",
        "scheme", "inval latency", "write stall", "home msgs", "flit-hops"
    );
    for scheme in [SchemeKind::UiUa, SchemeKind::MiUaCol, SchemeKind::MiMaCol, SchemeKind::MiMaWf] {
        let mut sys = DsmSystem::new(SystemConfig::for_scheme(k, scheme), scheme.build());
        let block = sys.geometry().block_of(addr);
        sys.seed_shared(block, &sharers);
        sys.issue(writer, MemOp::Write(addr));
        sys.run_until_idle(100_000).expect("transaction completes");
        let m = sys.metrics();
        println!(
            "{:>12} {:>11.0} cy {:>9.0} cy {:>12.0} {:>10}",
            scheme.name(),
            m.inval_latency.mean(),
            m.write_latency.mean(),
            m.inval_home_msgs.mean(),
            sys.net_stats().flit_hops,
        );
    }
    println!("\nEvery sharer was invalidated and the writer holds the only copy;");
    println!("multidestination worms cut the home's message count and the latency.");
}
