//! Drive the raw wormhole network: inject an i-reserve multicast worm and
//! an i-gather worm by hand and watch the BRCP machinery work — header
//! stripping, forward-and-absorb, i-ack posting, gather collection and
//! virtual-cut-through parking.
//!
//! Run with: `cargo run --release --example worm_playground`

use wormdsm::mesh::network::{MeshConfig, Network};
use wormdsm::mesh::topology::Mesh2D;
use wormdsm::mesh::worm::{TxnId, VNet, WormKind, WormSpec};

fn main() {
    let k = 8;
    let mut net = Network::new(MeshConfig::paper_defaults(k));
    let mesh = Mesh2D::square(k);
    let home = mesh.node_at(0, 0);
    let s1 = mesh.node_at(3, 2);
    let s2 = mesh.node_at(3, 4);
    let s3 = mesh.node_at(3, 6);
    let txn = TxnId(42);

    println!("Step 1: home (0,0) injects an i-reserve multicast worm covering");
    println!("        column-3 sharers (3,2) -> (3,4) -> (3,6).\n");
    net.inject(WormSpec {
        src: home,
        vnet: VNet::Req,
        kind: WormKind::Multicast,
        dests: [s1, s2, s3].into(),
        len_flits: 9,
        payload: 1,
        reserve_iack: true,
        txn,
        initial_acks: 0,
        gather_deposit: false,
        deliver: None,
    });
    net.run_until_quiescent(100_000).expect("multicast delivers");
    for s in [s1, s2, s3] {
        for d in net.take_deliveries(s) {
            println!("  {s} received the invalidation ({:?}, cycle {})", d.kind, d.at);
        }
    }

    println!("\nStep 2: (3,6) initiates the i-gather before the other acks are");
    println!("        posted; the worm parks at (3,4) (VCT deferred delivery).\n");
    net.inject(WormSpec {
        src: s3,
        vnet: VNet::Reply,
        kind: WormKind::Gather,
        dests: [s2, s1, home].into(),
        len_flits: 6,
        payload: 2,
        reserve_iack: false,
        txn,
        initial_acks: 1,
        gather_deposit: false,
        deliver: None,
    });
    for _ in 0..300 {
        net.tick();
    }
    println!("  parks so far: {}", net.stats().parks);

    println!("\nStep 3: the sharers post their i-acks; the parked worm resumes,");
    println!("        collects, and delivers ONE combined ack at the home.\n");
    net.post_iack(s2, txn);
    net.post_iack(s1, txn);
    net.run_until_quiescent(100_000).expect("gather completes");
    for d in net.take_deliveries(home) {
        println!("  home received gather with {} acks at cycle {}", d.acks, d.at);
    }
    println!("\n  resumes: {}, total flit-hops: {}", net.stats().resumes, net.stats().flit_hops);
}
