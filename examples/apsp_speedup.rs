//! Run the All-Pairs-Shortest-Path application — the workload with the
//! largest invalidation sets (every pivot-row rewrite invalidates almost
//! the whole machine) — under every scheme and report the speedup over
//! the UI-UA baseline.
//!
//! Run with: `cargo run --release --example apsp_speedup`
//! (Add `-- --small` for a 4x4-mesh quick run.)

use wormdsm::core::{DsmSystem, SchemeKind, SystemConfig};
use wormdsm::workloads::apps::apsp::{generate, ApspConfig};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let k = if small { 4 } else { 8 };
    let procs = k * k;
    let cfg = ApspConfig { n: procs, procs, relax_cost: 32 };

    println!("APSP (Floyd-Warshall) on a {k}x{k} mesh, n = {} vertices\n", cfg.n);
    println!(
        "{:>12} {:>12} {:>9} {:>9} {:>10} {:>11}",
        "scheme", "cycles", "speedup", "invals", "mean d", "inval lat"
    );
    let mut base = None;
    for scheme in SchemeKind::ALL {
        let mut sys = DsmSystem::new(SystemConfig::for_scheme(k, scheme), scheme.build());
        let w = generate(&cfg);
        let r = w.run(&mut sys, 100_000_000).expect("application completes");
        let baseline = *base.get_or_insert(r.cycles as f64);
        let m = sys.metrics();
        println!(
            "{:>12} {:>12} {:>9.3} {:>9} {:>10.1} {:>8.0} cy",
            scheme.name(),
            r.cycles,
            baseline / r.cycles as f64,
            m.inval_txns,
            m.inval_set_size.summary().mean(),
            m.inval_latency.mean()
        );
    }
    println!("\nMultidestination worms pay off most exactly where the paper argues:");
    println!("write-invalidations of widely shared data on a wormhole mesh.");
}
